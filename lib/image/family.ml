(* Program-family synthesis: the registry-scale image population behind
   E5R.  Where {!Catalog} mirrors the Top-50's *individual* structure,
   families mirror a production registry's *sharing* structure: thousands
   of images clustered into program families, each family sharing a distro
   base (the same layer objects as the Top-50) and a family runtime layer,
   with only a thin per-member layer of unique bytes (config, manifest, a
   seeded data blob).  That sharing is what the content-addressed store
   dedups, and what makes pulls cheap at scale.

   Every member also carries static dependency sidecars (`<bin>.deps`)
   naming its linked libraries, config files and data directory — the
   metadata a Cimplifier-style static partitioner walks instead of running
   the container (see {!Repro_slim.Partition}).  The dynamic working set
   (what appmain touches) is a strict subset of the static closure, so
   both strategies produce functional slim images while landing different
   reductions. *)

open Repro_util

let kib = Size.kib

type spec = {
  f_name : string;
  f_base : [ `Alpine | `Debian | `Scratch ];
  f_runtime_kib : int; (* shared family runtime library; 0 = none (static binaries) *)
  f_bin_kib : int; (* member binary (same descriptor family-wide) *)
  f_hot_kib : int; (* minimum hot data asset; grows to hit the band *)
  f_cold_kib : int; (* data shipped next to the hot asset, never read *)
  f_reduction_lo : float; (* dynamic-reduction band across the family *)
  f_reduction_hi : float;
}

let fam name base runtime bin hot cold lo hi =
  {
    f_name = name;
    f_base = base;
    f_runtime_kib = runtime;
    f_bin_kib = bin;
    f_hot_kib = hot;
    f_cold_kib = cold;
    f_reduction_lo = lo;
    f_reduction_hi = hi;
  }

(* Twenty families: eighteen dynamic-language/daemon shapes over distro
   bases plus two static-binary families (the Top-50's Go pattern). *)
let specs =
  [
    fam "webd" `Debian 192 48 32 64 0.82 0.95;
    fam "apid" `Debian 256 64 32 96 0.75 0.92;
    fam "kvstore" `Alpine 96 32 16 48 0.70 0.90;
    fam "queued" `Alpine 128 48 24 64 0.65 0.88;
    fam "sqldb" `Debian 384 96 64 128 0.55 0.80;
    fam "docstore" `Debian 320 96 48 96 0.55 0.78;
    fam "tsdb" `Alpine 256 64 48 96 0.60 0.85;
    fam "searchd" `Debian 448 128 64 128 0.50 0.75;
    fam "cms" `Debian 256 64 48 96 0.70 0.90;
    fam "wiki" `Debian 224 64 32 64 0.72 0.90;
    fam "mailer" `Debian 160 48 24 64 0.68 0.88;
    fam "proxyd" `Debian 96 32 16 32 0.85 0.96;
    fam "lb" `Alpine 80 32 16 32 0.85 0.95;
    fam "metricsd" `Alpine 192 64 32 64 0.65 0.85;
    fam "logship" `Alpine 224 64 32 96 0.60 0.82;
    fam "cached" `Alpine 64 24 16 32 0.80 0.94;
    fam "authd" `Debian 128 48 24 48 0.70 0.88;
    fam "schedlr" `Debian 160 48 32 64 0.66 0.86;
    fam "gobin" `Scratch 0 256 32 16 0.02 0.10;
    fam "edgegw" `Scratch 0 192 24 16 0.03 0.12;
  ]

let runtime_lib spec = Printf.sprintf "/usr/lib/fam-%s.so" spec.f_name

(* Byte size of the base-layer paths the application touches at runtime. *)
let base_used_bytes base =
  let layer = Catalog.base_layer base in
  let used = Catalog.base_paths_used base in
  List.fold_left
    (fun acc entry ->
      match entry with
      | Layer.File { path; _ } | Layer.Symlink { path; _ } when List.mem path used ->
          acc + Layer.entry_size entry
      | _ -> acc)
    0 layer.Layer.entries

(* The family runtime layer, shared by every member (one layer id). *)
let runtime_layer spec =
  if spec.f_runtime_kib = 0 then None
  else
    let lib = runtime_lib spec in
    let deps =
      String.concat "" (List.map (fun p -> "lib:" ^ p ^ "\n") (Catalog.base_paths_used spec.f_base))
    in
    Some
      (Layer.v
         ~id:("fam:" ^ spec.f_name)
         [
           Layer.Dir { path = "/usr/lib"; mode = 0o755 };
           Layer.File { path = lib; mode = 0o755; content = Content.Filler (kib spec.f_runtime_kib) };
           Layer.File { path = lib ^ ".deps"; mode = 0o644; content = Content.Literal deps };
         ])

(* Member [i]'s target dynamic reduction: a deterministic spread across the
   family's band (stride 7 walks the band out of member order, so
   neighbouring members land in different histogram buckets). *)
let member_reduction spec ~members i =
  let members = max members 1 in
  let frac = float_of_int (i * 7 mod members) /. float_of_int members in
  spec.f_reduction_lo +. ((spec.f_reduction_hi -. spec.f_reduction_lo) *. frac)

let member spec ~members i =
  let name = Printf.sprintf "%s-%04d" spec.f_name i in
  let base = Catalog.base_layer spec.f_base in
  let bin_path = "/usr/sbin/" ^ name in
  let conf_path = "/etc/" ^ name ^ ".conf" in
  let data_dir = "/usr/share/" ^ name in
  let hot_path = data_dir ^ "/hot.dat" in
  let seed_path = data_dir ^ "/seed.bin" in
  let cold_path = data_dir ^ "/cold.dat" in
  let seed_bytes =
    let rng = Rng.create ~seed:(Hashtbl.hash name) in
    Bytes.to_string (Rng.bytes rng (kib (1 + (i mod 4))))
  in
  let conf = Printf.sprintf "# %s\nfamily=%s\nlisten=0.0.0.0\nmember=%d\n" name spec.f_name i in
  let runtime_paths = if spec.f_runtime_kib = 0 then [] else [ runtime_lib spec ] in
  (* the dynamic working set: what appmain actually touches *)
  let manifest_paths =
    [ bin_path; conf_path; hot_path; seed_path ]
    @ runtime_paths
    @ Catalog.base_paths_used spec.f_base
  in
  let manifest = String.concat "\n" manifest_paths ^ "\n" in
  (* the static dependency sidecar: libraries, config, the data directory *)
  let deps =
    String.concat ""
      (List.map (fun p -> "lib:" ^ p ^ "\n") (runtime_paths @ Catalog.base_paths_used spec.f_base)
      @ [ "conf:" ^ conf_path ^ "\n"; "conf:" ^ Programs.manifest_path ^ "\n"; "data:" ^ data_dir ^ "\n" ])
  in
  (* Size the image so the member's dynamic reduction lands on its band
     target r.  Reduction = unused/total; the base's unused tooling bytes
     are fixed, so for low-r members the hot asset grows (a real database
     ships real data) and for high-r members ballast pads the unused
     side. *)
  let r = member_reduction spec ~members i in
  let base_used = base_used_bytes spec.f_base in
  let base_unused = max 0 (Layer.size base - base_used) in
  let runtime_deps_len =
    if spec.f_runtime_kib = 0 then 0
    else
      String.length
        (String.concat ""
           (List.map (fun p -> "lib:" ^ p ^ "\n") (Catalog.base_paths_used spec.f_base)))
  in
  let accessed0 =
    kib spec.f_bin_kib + String.length conf + String.length manifest
    + String.length seed_bytes + kib spec.f_runtime_kib + base_used
  in
  let unused0 = base_unused + kib spec.f_cold_kib + String.length deps + runtime_deps_len in
  let accessed_needed = int_of_float (float_of_int unused0 *. (1. -. r) /. r) in
  let hot_bytes = max (kib spec.f_hot_kib) (accessed_needed - accessed0) in
  let accessed = accessed0 + hot_bytes in
  let ballast =
    max 0 (int_of_float (float_of_int accessed *. r /. (1. -. r)) - unused0)
  in
  let app_entries =
    [
      Layer.Dir { path = data_dir; mode = 0o755 };
      Layer.File { path = bin_path; mode = 0o755; content = Content.Binary { prog = "appmain"; size = kib spec.f_bin_kib } };
      Layer.File { path = bin_path ^ ".deps"; mode = 0o644; content = Content.Literal deps };
      Layer.File { path = conf_path; mode = 0o644; content = Content.Literal conf };
      Layer.File { path = Programs.manifest_path; mode = 0o644; content = Content.Literal manifest };
      Layer.File { path = hot_path; mode = 0o644; content = Content.Filler hot_bytes };
      Layer.File { path = seed_path; mode = 0o644; content = Content.Literal seed_bytes };
      Layer.File { path = cold_path; mode = 0o644; content = Content.Filler (kib spec.f_cold_kib) };
    ]
  in
  let aux_entries =
    if ballast = 0 then []
    else
      let pieces = 2 + (i mod 3) in
      let piece = ballast / pieces in
      Layer.Dir { path = "/opt"; mode = 0o755 }
      :: Layer.Dir { path = "/opt/" ^ name ^ "-extras"; mode = 0o755 }
      :: List.init pieces (fun j ->
             let size = if j = pieces - 1 then ballast - (piece * (pieces - 1)) else piece in
             Layer.File
               {
                 path = Printf.sprintf "/opt/%s-extras/tool-%d" name j;
                 mode = 0o644;
                 content = Content.Filler size;
               })
  in
  let layers =
    [ base ]
    @ Option.to_list (runtime_layer spec)
    @ [ Layer.v ~id:("app:" ^ name) app_entries ]
    @ (if aux_entries = [] then [] else [ Layer.v ~id:("aux:" ^ name) aux_entries ])
  in
  let config =
    {
      Image.env = [ ("PATH", "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin") ];
      entrypoint = [ bin_path ];
      workdir = "/";
      user = 0;
    }
  in
  Image.v ~name ~config layers

(* Exactly [n] images, families in [specs] order, members round-sized so
   every family is populated whenever [n >= length specs]. *)
let synthesize ~n =
  let nfam = List.length specs in
  let counts =
    List.mapi (fun idx _ -> (n / nfam) + (if idx < n mod nfam then 1 else 0)) specs
  in
  List.concat
    (List.map2 (fun spec count -> List.init count (fun i -> member spec ~members:count i)) specs counts)

(* One representative per family (member 0 with the member count it would
   have in [synthesize ~n]), for materialize-and-run comparisons. *)
let representatives ~n =
  let nfam = List.length specs in
  List.mapi
    (fun idx spec ->
      let count = max 1 ((n / nfam) + if idx < n mod nfam then 1 else 0) in
      (spec, member spec ~members:count 0))
    specs
