(** A Dockerfile-style image builder.  Instructions assemble layers; [Run]
    executes a command with /bin/sh -c in a build container over the
    image-so-far and captures the filesystem diff (adds, changes and
    whiteouts) as a new layer, like `docker build`.  This is how a library
    user produces the slim/fat image pairs CNTR works with. *)

open Repro_os

type instruction =
  | From of string  (** registry reference, or "scratch"; must come first *)
  | Copy of { dst : string; mode : int; content : Content.t }
  | Mkdir of string
  | Run of string  (** requires /bin/sh in the image and a registered "sh" program *)
  | Env of string * string
  | Entrypoint of string list
  | Workdir of string
  | User of int

(** Build an image named [name] from the instructions.  Fails with [ENOENT]
    for an unknown base, [EIO] for a failing [Run], [EINVAL] for a
    misplaced [From]. *)
val build :
  kernel:Kernel.t ->
  registry:Registry.t ->
  name:string ->
  instruction list ->
  (Image.t, Repro_util.Errno.t) result
