(** Content descriptors -> chunk manifests for the dedup store.  Results
    are memoized process-wide (chunking is a pure function of the rendered
    bytes); [Filler]/[Binary] descriptors take the analytic
    prefix-plus-uniform path and are never rendered. *)

(** Chunks of the rendered content. *)
val content_chunks : Content.t -> Repro_store.Chunker.chunk list

(** A layer's manifest: entry chunks in entry order (dirs and whiteouts
    carry no bytes; symlinks carry their target). *)
val layer_chunks : Layer.t -> Repro_store.Chunker.chunk list
