(** Program-family synthesis: a registry-scale image population (E5R).

    Thousands of images clustered into ~20 program families.  Members of a
    family share the distro base layer (the same objects as the Top-50
    catalogue) and a family runtime layer; only a thin per-member layer
    (config, manifest, seeded data) is unique.  Every member carries
    [<bin>.deps] static dependency sidecars so {!Repro_slim.Partition} can
    slim it without running it, and an /etc/app.manifest dynamic working
    set that is a strict subset of the static closure. *)

type spec = {
  f_name : string;
  f_base : [ `Alpine | `Debian | `Scratch ];
  f_runtime_kib : int;  (** shared runtime library; 0 = static binaries *)
  f_bin_kib : int;  (** member binary size *)
  f_hot_kib : int;  (** data asset read at runtime *)
  f_cold_kib : int;  (** data shipped but never read *)
  f_reduction_lo : float;  (** dynamic-reduction band across members *)
  f_reduction_hi : float;
}

val specs : spec list

(** Path of the family's shared runtime library. *)
val runtime_lib : spec -> string

(** Member [i] of a family with [members] total members; deterministic. *)
val member : spec -> members:int -> int -> Image.t

(** Exactly [n] images spread across all families; deterministic. *)
val synthesize : n:int -> Image.t list

(** One representative (member 0) per family, with the member count it
    would have in [synthesize ~n] — for materialize-and-run checks. *)
val representatives : n:int -> (spec * Image.t) list
