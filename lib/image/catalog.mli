(** The synthetic Top-50 Docker Hub catalogue (§5.3, Figure 5): 44 ordinary
    applications over Debian/Alpine bases (whose tooling is mostly unused
    at runtime) plus 6 single-Go-binary images whose whole content is used.
    Sizes are scaled 1:16 from real images; reductions are ratios and
    unaffected by scale. *)

type spec = {
  sp_name : string;
  sp_base : [ `Alpine | `Debian | `Scratch ];
  sp_app_bytes : int;  (** runtime working set, scaled bytes *)
  sp_target_reduction : float;  (** intended slimming ratio, 0-1 *)
}

val specs : spec list

(** Shared base layers (equal ids dedup in the registry). *)
val debian_base : Layer.t

val alpine_base : Layer.t
val scratch_base : Layer.t

val base_layer : [ `Alpine | `Debian | `Scratch ] -> Layer.t

(** Paths of a base the application actually touches at runtime. *)
val base_paths_used : [ `Alpine | `Debian | `Scratch ] -> string list

(** Synthesize the image for one spec. *)
val build : spec -> Image.t

(** The whole Top-50. *)
val top50 : unit -> Image.t list

(** Push the catalogue into a registry. *)
val publish : Registry.t -> unit
