(** Container images: an ordered stack of {!Layer}s plus run configuration.
    [materialize] unions the layers (with whiteouts) into a fresh
    filesystem — the rootfs a container engine boots from. *)

open Repro_os

type config = {
  env : (string * string) list;
  entrypoint : string list;  (** argv; empty = no main process *)
  workdir : string;
  user : int;  (** uid the main process runs as *)
}

val default_config : config

type t = {
  name : string;
  tag : string;
  layers : Layer.t list;  (** bottom-most first *)
  config : config;
}

(** Build an image (default tag "latest"). *)
val v : ?tag:string -> ?config:config -> name:string -> Layer.t list -> t

(** "name:tag". *)
val ref_ : t -> string

(** Total uncompressed size of all layers (what a registry stores). *)
val size : t -> int

val file_count : t -> int

(** Paths present after union (whiteouts applied), sorted. *)
val effective_paths : t -> string list

(** Winning entry per path after union — the static view a dependency
    partitioner walks without materializing the image. *)
val effective_entries : t -> (string, Layer.entry) Hashtbl.t

(** Per-path sizes after union. *)
val effective_sizes : t -> (string, int) Hashtbl.t

(** Bytes visible after union — the "image size" of Figure 5. *)
val effective_size : t -> int

(** Union-materialize into a fresh RAM filesystem. *)
val materialize :
  t -> kernel:Kernel.t -> proc:Proc.t -> (Repro_vfs.Nativefs.t, Repro_util.Errno.t) result
