(* A container image layer: an ordered list of filesystem changes, like a
   tar layer in the OCI model.  Whiteouts delete files from lower layers
   when layers are unioned. *)

type entry =
  | Dir of { path : string; mode : int }
  | File of { path : string; mode : int; content : Content.t }
  | Symlink of { path : string; target : string }
  | Whiteout of string

type t = {
  id : string; (* content-address stand-in; equal ids share registry cache *)
  entries : entry list;
}

let v ~id entries = { id; entries }

let entry_size = function
  | Dir _ -> 0
  | File { content; _ } -> Content.size content
  | Symlink { target; _ } -> String.length target
  | Whiteout _ -> 0

(* Uncompressed byte size of the layer (what the registry transfers). *)
let size t = List.fold_left (fun acc e -> acc + entry_size e) 0 t.entries

let paths t =
  List.filter_map
    (function
      | Dir { path; _ } | File { path; _ } | Symlink { path; _ } -> Some path
      | Whiteout _ -> None)
    t.entries
