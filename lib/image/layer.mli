(** An image layer: an ordered list of filesystem changes, like a tar layer
    in the OCI model.  Whiteouts delete lower-layer files when unioned. *)

type entry =
  | Dir of { path : string; mode : int }
  | File of { path : string; mode : int; content : Content.t }
  | Symlink of { path : string; target : string }
  | Whiteout of string

type t = {
  id : string;  (** content-address stand-in: equal ids share registry caches *)
  entries : entry list;
}

val v : id:string -> entry list -> t

val entry_size : entry -> int

(** Uncompressed byte size (what the registry transfers). *)
val size : t -> int

(** Paths added by this layer (whiteouts excluded). *)
val paths : t -> string list
