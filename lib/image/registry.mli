(** An image registry with a network cost model: pulls transfer each layer
    missing from the host's layer cache, so shared base images dedup and
    slim images deploy faster — the paper's §1 motivation. *)

open Repro_util

type t

(** [create ~clock ()] — bandwidth defaults to 125 MB/s with 20 ms of
    per-layer latency. *)
val create : clock:Clock.t -> ?bandwidth_mb_per_s:float -> ?latency_ms_per_layer:int -> unit -> t

val push : t -> Image.t -> unit

val find : t -> string -> Image.t option

(** All images, sorted by reference. *)
val images : t -> Image.t list

(** Pull by "name:tag": transfers uncached layers, charging network time on
    the virtual clock.  Returns the image and the bytes transferred. *)
val pull : t -> string -> (Image.t * int, [ `Not_found ]) result

(** Empty the host's layer cache (cold-pull measurements). *)
val drop_cache : t -> unit
