(** An image registry with a chunk-granular network cost model, built on
    the content-addressed dedup store ({!Repro_store.Store}): pulls
    transfer only the chunks missing from the pulling host's store, so
    shared base layers — and shared byte runs inside otherwise-distinct
    layers — dedup, and slim images deploy faster (the paper's §1
    motivation). *)

open Repro_util

type t

(** [create ~clock ()] — bandwidth defaults to 125 MB/s with 20 ms of
    latency per transferring layer.  With [metrics], the registry store
    registers [store.*] and the host store [store.host.*] (chunk counts,
    logical/physical bytes, dedup ratio, gc). *)
val create :
  ?metrics:Repro_obs.Metrics.t ->
  clock:Clock.t ->
  ?bandwidth_mb_per_s:float ->
  ?latency_ms_per_layer:int ->
  unit ->
  t

(** The registry-side content store (everything pushed). *)
val store : t -> Repro_store.Store.t

(** The pulling host's chunk store. *)
val host_store : t -> Repro_store.Store.t

(** Total bytes moved by all pulls so far. *)
val bytes_transferred : t -> int

(** Register the image and every layer's chunk manifest.  Layer ids are
    content addresses: a known id bumps refcounts without re-walking the
    entries. *)
val push : t -> Image.t -> unit

val find : t -> string -> Image.t option

(** All images, sorted by reference. *)
val images : t -> Image.t list

(** Pull by "name:tag": transfers the chunks missing from the host store,
    charging network time on the virtual clock.  Layers that move no bytes
    are free — no per-layer latency for cached (or fully chunk-deduped)
    layers.  Returns the image and the bytes transferred. *)
val pull : t -> string -> (Image.t * int, [ `Not_found ]) result

(** Empty the host's chunk store (cold-pull measurements). *)
val drop_cache : t -> unit
