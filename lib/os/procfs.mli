(** Synthesized /proc.  CNTR's step #1 reads a container's execution
    context out of here: status (uid/gid/caps), environ, cgroup, mounts,
    limits, uid/gid maps, the ns/* magic symlinks, attr/current.  Each
    instance is scoped to a PID namespace: a container's /proc shows only
    its own processes, while the host's shows everything. *)

open Repro_vfs

type t

val create : kernel:Kernel.t -> pidns:Namespace.pid_ns -> t

(** The filesystem to mount at /proc. *)
val ops : t -> Fsops.t
