(** Namespace identities.  Mount namespaces carry real state in {!Mount};
    PID namespaces are hierarchical (a parent sees its descendants'
    processes); the others are opaque identity tags whose sharing and
    unsharing is what the simulation tracks. *)

type kind = Mnt | Pid | Net | Uts | Ipc | User | Cgroup

val kind_to_string : kind -> string
val all_kinds : kind list

(** An opaque namespace tag (net, uts, ipc, cgroup). *)
type t = { id : int; kind : kind }

type pid_ns = { pns_id : int; parent : pid_ns option }

(** Is [inner] equal to or a descendant of [outer]?  Its processes are then
    visible from [outer]'s /proc. *)
val pid_ns_visible_from : outer:pid_ns -> pid_ns -> bool

(** uid/gid mapping ranges of a user namespace. *)
type mapping = { inside : int; outside : int; count : int }

type user_ns = {
  uns_id : int;
  mutable uid_map : mapping list;
  mutable gid_map : mapping list;
}

val map_to_host : mapping list -> int -> int option
val map_to_ns : mapping list -> int -> int option
val identity_map : mapping list
