(** Minimal epoll: an interest set of fds with readiness probes.  The
    simulation is single-threaded, so [wait] reports which registered fds
    are ready right now (level-triggered); event loops pump until quiet. *)

type interest = { want_in : bool; want_out : bool }

type probes = { p_readable : unit -> bool; p_writable : unit -> bool }

type event = { ev_fd : int; ev_in : bool; ev_out : bool }

type t

val create : unit -> t
val add : t -> fd:int -> interest:interest -> probes:probes -> unit
val modify : t -> fd:int -> interest:interest -> probes:probes -> unit
val remove : t -> fd:int -> unit

(** Ready events, sorted by fd. *)
val wait : t -> event list

val watched_count : t -> int
