(** Minimal epoll: an interest set of fds with readiness probes.  The
    simulation is single-threaded, so [wait] reports which registered fds
    are ready right now (level-triggered); [wait_edge] implements the
    EPOLLET contract — only false->true readiness transitions since the
    previous [wait_edge] are reported, so a partially drained fd is not
    re-announced until it empties and refills. *)

type interest = { want_in : bool; want_out : bool }

type probes = { p_readable : unit -> bool; p_writable : unit -> bool }

type event = { ev_fd : int; ev_in : bool; ev_out : bool }

type t

val create : unit -> t

(** Adding (or re-adding) an fd resets its edge state, like
    EPOLL_CTL_MOD: the next {!wait_edge} reports current readiness as a
    fresh transition. *)
val add : t -> fd:int -> interest:interest -> probes:probes -> unit

val modify : t -> fd:int -> interest:interest -> probes:probes -> unit

(** Reset the fd's edge state only (EPOLL_CTL_MOD re-arm): the next
    {!wait_edge} reports current readiness as a fresh transition. *)
val rearm : t -> fd:int -> unit

val remove : t -> fd:int -> unit

(** Install the wakeup callback the kernel wires to watched objects'
    waitqueues; {!fire_notify} invokes it (no-op when unset). *)
val set_notify : t -> (unit -> unit) option -> unit

val fire_notify : t -> unit

(** Ready events, sorted by fd (level-triggered). *)
val wait : t -> event list

(** Readiness transitions since the last [wait_edge], sorted by fd. *)
val wait_edge : t -> event list

val watched_count : t -> int
