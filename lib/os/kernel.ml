(* The simulated kernel: process table, namespaces, mount forest, path
   walking, and the syscall surface the rest of the repository programs
   against.  All costs are charged to the virtual clock. *)

open Repro_util
open Repro_vfs

type program = t -> Proc.t -> string list -> int

and chardev = {
  dev_name : string;
  dev_read : len:int -> string;
  dev_write : string -> int;
  (* When present, opening the device yields a custom fd instead of a plain
     file (e.g. /dev/fuse creates a connection). *)
  dev_open : (t -> Proc.t -> Proc.fd_entry) option;
}

and cgroup = { mutable cg_procs : int list }

and t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  (* Hot handle for the per-syscall counter; rare ops (fork, exec,
     namespace changes) look their counters up by name at call time. *)
  k_syscalls : Repro_obs.Metrics.counter;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  namespaces : (int, Mount.ns) Hashtbl.t; (* all mount namespaces *)
  sock_bindings : (int * int, Sock.listener) Hashtbl.t; (* (fs_id, ino) *)
  programs : (string, program) Hashtbl.t;
  chardevs : (int * int, chardev) Hashtbl.t;
  cgroups : (string, cgroup) Hashtbl.t;
  hostnames : (int, string) Hashtbl.t; (* uts ns id -> hostname *)
  mutable next_tag : int;
  mutable init_pid : int;
  (* Fault-injection hook consulted on file/metadata syscalls: given the
     syscall name and the calling process, an [Errno.t] makes the call fail
     before touching the filesystem.  Installed by the fault plane (filtered
     there to the CntrFS server's processes); None costs one branch. *)
  mutable k_fault : (op:string -> Proc.t -> Errno.t option) option;
}

let ( let* ) = Result.bind

let charge t =
  Repro_obs.Metrics.incr t.k_syscalls;
  Clock.consume_int t.clock t.cost.Cost.syscall_ns

let set_fault t hook = t.k_fault <- hook

(* [Ok ()] in the common (unhooked) case; charge still applies — a faulted
   syscall entered the kernel before failing. *)
let fault_check t proc op =
  match t.k_fault with
  | None -> Ok ()
  | Some hook -> ( match hook ~op proc with None -> Ok () | Some e -> Error e)

(* Get-or-create a named counter on the kernel's registry — for cold
   paths where holding a handle isn't worth a record field. *)
let count t name n =
  Repro_obs.Metrics.add (Repro_obs.Metrics.counter (Repro_obs.Obs.metrics t.obs) name) n

let fresh_tag t =
  t.next_tag <- t.next_tag + 1;
  t.next_tag

let fresh_ns t kind = { Namespace.id = fresh_tag t; kind }

let register_mnt_ns t ns = Hashtbl.replace t.namespaces ns.Mount.ns_id ns

(* Create a kernel whose init process (pid 1) runs as root on [root_fs].
   The host root mount is shared, as systemd sets it up. *)
let create ?obs ~clock ~cost ~root_fs () =
  let obs = match obs with Some o -> o | None -> Repro_obs.Obs.create () in
  let t =
    {
      clock;
      cost;
      obs;
      k_syscalls = Repro_obs.Metrics.counter (Repro_obs.Obs.metrics obs) "os.syscall.count";
      procs = Hashtbl.create 64;
      next_pid = 2;
      namespaces = Hashtbl.create 8;
      sock_bindings = Hashtbl.create 16;
      programs = Hashtbl.create 32;
      chardevs = Hashtbl.create 8;
      cgroups = Hashtbl.create 8;
      hostnames = Hashtbl.create 4;
      next_tag = 0;
      init_pid = 1;
      k_fault = None;
    }
  in
  let mnt_ns = Mount.create_ns ~fs:root_fs () in
  Mount.make_shared (Mount.root_mount mnt_ns);
  register_mnt_ns t mnt_ns;
  let root_vnode = { Proc.v_mount = Mount.root_mount mnt_ns; v_ino = root_fs.Fsops.root } in
  let ns_set =
    {
      Proc.mnt = mnt_ns;
      pid_ns = { Namespace.pns_id = fresh_tag t; parent = None };
      net = fresh_ns t Namespace.Net;
      uts = fresh_ns t Namespace.Uts;
      ipc = fresh_ns t Namespace.Ipc;
      user = { Namespace.uns_id = fresh_tag t; uid_map = Namespace.identity_map; gid_map = Namespace.identity_map };
      cgroup_ns = fresh_ns t Namespace.Cgroup;
    }
  in
  let init =
    {
      Proc.pid = 1;
      ppid = 0;
      comm = "init";
      cred = { uid = 0; gid = 0; groups = [ 0 ]; caps = Caps.Set.full };
      ns = ns_set;
      cwd = root_vnode;
      root = root_vnode;
      fds = Hashtbl.create 8;
      next_fd = 3;
      env = [ ("PATH", "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin") ];
      cgroup = "/";
      lsm_profile = None;
      rlimit_fsize = None;
      umask = 0o022;
      alive = true;
      exit_code = None;
    }
  in
  Hashtbl.replace t.procs 1 init;
  Hashtbl.replace t.cgroups "/" { cg_procs = [ 1 ] };
  Hashtbl.replace t.hostnames ns_set.Proc.uts.Namespace.id "host";
  t

let init_proc t = Hashtbl.find t.procs t.init_pid

let proc_by_pid t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p when p.Proc.alive -> Ok p
  | _ -> Error Errno.ESRCH

let all_procs t =
  Hashtbl.fold (fun _ p acc -> if p.Proc.alive then p :: acc else acc) t.procs []
  |> List.sort (fun a b -> compare a.Proc.pid b.Proc.pid)

(* Processes visible from a given pid namespace (it and its descendants). *)
let procs_in_pidns t pidns =
  all_procs t
  |> List.filter (fun p -> Namespace.pid_ns_visible_from ~outer:pidns p.Proc.ns.Proc.pid_ns)

(* --- path walking ------------------------------------------------------ *)

let vnode_stat v =
  v.Proc.v_mount.Mount.m_fs.Fsops.getattr v.Proc.v_ino

(* Descend through mounts stacked on [v] in namespace [ns]. *)
let rec descend_mounts ns v =
  match Mount.mount_on ns ~mid:v.Proc.v_mount.Mount.m_id ~ino:v.Proc.v_ino with
  | Some m -> descend_mounts ns { Proc.v_mount = m; v_ino = m.Mount.m_root }
  | None -> v

let max_symlink_depth = 40

(* Walk [path] starting from [base] (or the process root for absolute
   paths), honoring mounts, chroot and symlinks. *)
let resolve ?(follow = true) _t proc ~base path =
  let cred = Proc.vfs_cred proc in
  let ns = proc.Proc.ns.Proc.mnt in
  let rec loop depth cur comps =
    if depth > max_symlink_depth then Error Errno.ELOOP
    else
      match comps with
      | [] -> Ok cur
      | ".." :: rest ->
          if Proc.vnode_eq cur proc.Proc.root then loop depth cur rest
          else if cur.Proc.v_ino = cur.Proc.v_mount.Mount.m_root then (
            (* At a mount root: climb to the mountpoint in the parent mount
               and retry the "..". *)
            match cur.Proc.v_mount.Mount.m_mp with
            | None -> loop depth cur rest (* namespace root *)
            | Some (pmid, mp_ino) -> (
                match Mount.find ns pmid with
                | None -> Error Errno.EIO
                | Some pm ->
                    loop depth { Proc.v_mount = pm; v_ino = mp_ino } comps))
          else
            let fs = cur.Proc.v_mount.Mount.m_fs in
            let* ino, _st = fs.Fsops.lookup cred cur.Proc.v_ino ".." in
            loop depth { cur with Proc.v_ino = ino } rest
      | comp :: rest -> (
          let fs = cur.Proc.v_mount.Mount.m_fs in
          let* ino, st = fs.Fsops.lookup cred cur.Proc.v_ino comp in
          let next = descend_mounts ns { Proc.v_mount = cur.Proc.v_mount; v_ino = ino } in
          match st.Types.st_kind with
          | Types.Symlink when rest <> [] || follow ->
              let* target = fs.Fsops.readlink ino in
              let tcomps = Pathx.split target in
              if Pathx.is_absolute target then
                loop (depth + 1) proc.Proc.root (tcomps @ rest)
              else loop (depth + 1) cur (tcomps @ rest)
          | _ -> loop depth next rest)
  in
  let start = if Pathx.is_absolute path then proc.Proc.root else base in
  loop 0 start (Pathx.split path)

let resolve_cwd ?follow t proc path = resolve ?follow t proc ~base:proc.Proc.cwd path

(* Resolve the parent directory of [path] and return it with the final
   component (for create-style operations). *)
let resolve_parent t proc path =
  let comps = Pathx.split path in
  match List.rev comps with
  | [] -> Error Errno.EEXIST (* the root itself *)
  | last :: _ when last = ".." -> Error Errno.EINVAL
  | last :: rev_parent ->
      let parent_path =
        let comps = List.rev rev_parent in
        if Pathx.is_absolute path then Pathx.join_abs comps
        else if comps = [] then "."
        else String.concat "/" comps
      in
      let* dir = resolve_cwd t proc parent_path in
      Ok (dir, last)

(* --- fd helpers -------------------------------------------------------- *)

let file_of_fd proc fdn =
  match Proc.fd proc fdn with
  | Some (Proc.File f) -> Ok f
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let fd_entry proc fdn =
  match Proc.fd proc fdn with Some e -> Ok e | None -> Error Errno.EBADF

(* --- open/close/read/write -------------------------------------------- *)

let chardev_of t st =
  match st.Types.st_kind with
  | Types.Chr (a, b) -> Hashtbl.find_opt t.chardevs (a, b)
  | _ -> None

let open_ t proc path flags ~mode =
  charge t;
  let* () = fault_check t proc "open" in
  let follow = not (List.mem Types.O_NOFOLLOW flags) in
  let resolved =
    match resolve_cwd ~follow t proc path with
    | Ok v ->
        if List.mem Types.O_CREAT flags && List.mem Types.O_EXCL flags then
          Error Errno.EEXIST
        else Ok (`Existing v)
    | Error Errno.ENOENT when List.mem Types.O_CREAT flags -> (
        match resolve_parent t proc path with
        | Ok (dir, name) -> Ok (`Create (dir, name))
        | Error e -> Error e)
    | Error e -> Error e
  in
  let* r = resolved in
  match r with
  | `Existing v -> (
      let* st = vnode_stat v in
      match st.Types.st_kind with
      | Types.Symlink -> Error Errno.ELOOP (* O_NOFOLLOW on a symlink *)
      | Types.Chr _ when chardev_of t st <> None -> (
          let dev = Option.get (chardev_of t st) in
          match dev.dev_open with
          | Some f -> Ok (Proc.alloc_fd proc (f t proc))
          | None ->
              let fs = v.Proc.v_mount.Mount.m_fs in
              let* fh = fs.Fsops.open_ (Proc.vfs_cred proc) v.Proc.v_ino flags in
              let entry =
                Proc.File
                  { of_vnode = v; of_fh = fh; of_flags = flags; of_path = path; of_offset = 0; of_refs = 1 }
              in
              Ok (Proc.alloc_fd proc entry))
      | _ ->
          let fs = v.Proc.v_mount.Mount.m_fs in
          let flags =
            if v.Proc.v_mount.Mount.m_ro && Types.flag_writable flags then flags
            else flags
          in
          let* () =
            if v.Proc.v_mount.Mount.m_ro && Types.flag_writable flags then
              Error Errno.EROFS
            else Ok ()
          in
          let* fh = fs.Fsops.open_ (Proc.vfs_cred proc) v.Proc.v_ino flags in
          let entry =
            Proc.File
              { of_vnode = v; of_fh = fh; of_flags = flags; of_path = path; of_offset = 0; of_refs = 1 }
          in
          Ok (Proc.alloc_fd proc entry))
  | `Create (dir, name) ->
      let* () =
        if dir.Proc.v_mount.Mount.m_ro then Error Errno.EROFS else Ok ()
      in
      let fs = dir.Proc.v_mount.Mount.m_fs in
      let mode = mode land lnot proc.Proc.umask in
      let* st, fh = fs.Fsops.create (Proc.vfs_cred proc) dir.Proc.v_ino name ~mode flags in
      let v = { Proc.v_mount = dir.Proc.v_mount; v_ino = st.Types.st_ino } in
      let entry =
        Proc.File
          { of_vnode = v; of_fh = fh; of_flags = flags; of_path = path; of_offset = 0; of_refs = 1 }
      in
      Ok (Proc.alloc_fd proc entry)

let release_file f =
  f.Proc.of_refs <- f.Proc.of_refs - 1;
  if f.Proc.of_refs = 0 then
    f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.release f.Proc.of_fh

(* Closing a watched fd drops it from every epoll interest set of the same
   process, as Linux does when the last reference to the file goes away. *)
let epoll_forget proc fdn =
  Hashtbl.iter
    (fun _ entry ->
      match entry with Proc.Epoll_fd e -> Epoll.remove e ~fd:fdn | _ -> ())
    proc.Proc.fds

let close t proc fdn =
  charge t;
  match Proc.fd proc fdn with
  | None -> Error Errno.EBADF
  | Some entry ->
      Hashtbl.remove proc.Proc.fds fdn;
      epoll_forget proc fdn;
      (match entry with
      | Proc.File f -> release_file f
      | Proc.Pipe_r p -> Pipe.close_reader p
      | Proc.Pipe_w p -> Pipe.close_writer p
      | Proc.Sock_listen l -> Sock.close_listener l
      | Proc.Sock_conn ep -> Sock.close_endpoint ep
      | Proc.Epoll_fd _ -> ()
      | Proc.Custom c -> c.Proc.c_close ());
      Ok ()

let dup t proc fdn =
  charge t;
  let* entry = fd_entry proc fdn in
  (match entry with
  | Proc.File f -> f.Proc.of_refs <- f.Proc.of_refs + 1
  | Proc.Pipe_r p -> Pipe.add_reader p
  | Proc.Pipe_w p -> Pipe.add_writer p
  | _ -> ());
  Ok (Proc.alloc_fd proc entry)

let file_kind f =
  match f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.getattr f.Proc.of_vnode.Proc.v_ino with
  | Ok st -> st.Types.st_kind
  | Error _ -> Types.Reg

let read_file t proc f ~len =
  let fs = f.Proc.of_vnode.Proc.v_mount.Mount.m_fs in
  match file_kind f with
  | Types.Chr (a, b) -> (
      match Hashtbl.find_opt t.chardevs (a, b) with
      | Some dev -> Ok (dev.dev_read ~len)
      | None -> Error Errno.ENXIO)
  | _ ->
      let* data = fs.Fsops.read f.Proc.of_fh ~off:f.Proc.of_offset ~len in
      f.Proc.of_offset <- f.Proc.of_offset + String.length data;
      Ok data
  [@@warning "-27"]

let read t proc fdn ~len =
  charge t;
  let* () = fault_check t proc "read" in
  let* entry = fd_entry proc fdn in
  match entry with
  | Proc.File f -> read_file t proc f ~len
  | Proc.Pipe_r p -> Pipe.read p ~len
  | Proc.Pipe_w _ -> Error Errno.EBADF
  | Proc.Sock_conn ep -> Sock.recv ep ~len
  | Proc.Sock_listen _ | Proc.Epoll_fd _ -> Error Errno.EINVAL
  | Proc.Custom c -> c.Proc.c_read ~len

and write t proc fdn data =
  charge t;
  let* () = fault_check t proc "write" in
  let* entry = fd_entry proc fdn in
  match entry with
  | Proc.File f -> (
      let fs = f.Proc.of_vnode.Proc.v_mount.Mount.m_fs in
      match file_kind f with
      | Types.Chr (a, b) -> (
          match Hashtbl.find_opt t.chardevs (a, b) with
          | Some dev -> Ok (dev.dev_write data)
          | None -> Error Errno.ENXIO)
      | _ ->
          let* n =
            fs.Fsops.write (Proc.vfs_cred proc) f.Proc.of_fh ~off:f.Proc.of_offset data
          in
          (* For O_APPEND files the fs wrote at EOF; either way the cursor
             advances by what was written. *)
          f.Proc.of_offset <- f.Proc.of_offset + n;
          Ok n)
  | Proc.Pipe_w p -> Pipe.write p data
  | Proc.Pipe_r _ -> Error Errno.EBADF
  | Proc.Sock_conn ep -> Sock.send ep data
  | Proc.Sock_listen _ | Proc.Epoll_fd _ -> Error Errno.EINVAL
  | Proc.Custom c -> c.Proc.c_write data

let pread t proc fdn ~off ~len =
  charge t;
  let* () = fault_check t proc "pread" in
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.read f.Proc.of_fh ~off ~len

let pwrite t proc fdn ~off data =
  charge t;
  let* () = fault_check t proc "pwrite" in
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.write (Proc.vfs_cred proc) f.Proc.of_fh ~off data

let freadlink t proc fdn =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.readlink f.Proc.of_vnode.Proc.v_ino

let fsetattr t proc fdn sa =
  charge t;
  let* f = file_of_fd proc fdn in
  let fs = f.Proc.of_vnode.Proc.v_mount.Mount.m_fs in
  fs.Fsops.setattr (Proc.vfs_cred proc) f.Proc.of_vnode.Proc.v_ino sa

let fgetxattr t proc fdn name =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.getxattr f.Proc.of_vnode.Proc.v_ino name

let fsetxattr t proc fdn name value =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.setxattr (Proc.vfs_cred proc)
    f.Proc.of_vnode.Proc.v_ino name value

let flistxattr t proc fdn =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.listxattr f.Proc.of_vnode.Proc.v_ino

let fremovexattr t proc fdn name =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.removexattr (Proc.vfs_cred proc)
    f.Proc.of_vnode.Proc.v_ino name

type seek_cmd = SEEK_SET of int | SEEK_CUR of int | SEEK_END of int

let lseek t proc fdn cmd =
  charge t;
  let* f = file_of_fd proc fdn in
  let* st = vnode_stat f.Proc.of_vnode in
  let target =
    match cmd with
    | SEEK_SET n -> n
    | SEEK_CUR d -> f.Proc.of_offset + d
    | SEEK_END d -> st.Types.st_size + d
  in
  if target < 0 then Error Errno.EINVAL
  else begin
    f.Proc.of_offset <- target;
    Ok target
  end

let fsync t proc fdn =
  charge t;
  let* () = fault_check t proc "fsync" in
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.fsync f.Proc.of_fh

let fallocate t proc fdn ~off ~len =
  charge t;
  let* f = file_of_fd proc fdn in
  f.Proc.of_vnode.Proc.v_mount.Mount.m_fs.Fsops.fallocate f.Proc.of_fh ~off ~len

let ftruncate t proc fdn size =
  charge t;
  let* f = file_of_fd proc fdn in
  let fs = f.Proc.of_vnode.Proc.v_mount.Mount.m_fs in
  let sa = { Types.setattr_none with Types.sa_size = Some size } in
  let* _st = fs.Fsops.setattr (Proc.vfs_cred proc) f.Proc.of_vnode.Proc.v_ino sa in
  Ok ()

(* --- metadata syscalls ------------------------------------------------- *)

let stat t proc path =
  charge t;
  let* () = fault_check t proc "stat" in
  let* v = resolve_cwd t proc path in
  vnode_stat v

let lstat t proc path =
  charge t;
  let* () = fault_check t proc "lstat" in
  let* v = resolve_cwd ~follow:false t proc path in
  vnode_stat v

let fstat t proc fdn =
  charge t;
  let* f = file_of_fd proc fdn in
  vnode_stat f.Proc.of_vnode

let access t proc path want =
  charge t;
  let* v = resolve_cwd t proc path in
  let fs = v.Proc.v_mount.Mount.m_fs in
  let* st = fs.Fsops.getattr v.Proc.v_ino in
  let acl = Result.to_option (fs.Fsops.getxattr v.Proc.v_ino "system.posix_acl_access") in
  if
    Perm.check (Proc.vfs_cred proc) ~uid:st.Types.st_uid ~gid:st.Types.st_gid
      ~mode:st.Types.st_mode ?acl want
  then Ok ()
  else Error Errno.EACCES

let with_parent t proc path f =
  let* dir, name = resolve_parent t proc path in
  if dir.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else f dir.Proc.v_mount.Mount.m_fs dir.Proc.v_ino name

let mkdir t proc path ~mode =
  charge t;
  let* () = fault_check t proc "mkdir" in
  with_parent t proc path (fun fs dir name ->
      let mode = mode land lnot proc.Proc.umask in
      let* _st = fs.Fsops.mkdir (Proc.vfs_cred proc) dir name ~mode in
      Ok ())

let mknod t proc path ~kind ~mode =
  charge t;
  with_parent t proc path (fun fs dir name ->
      let* () =
        match kind with
        | Types.Chr _ | Types.Blk _ ->
            if Caps.Set.mem Caps.CAP_MKNOD proc.Proc.cred.Proc.caps then Ok ()
            else Error Errno.EPERM
        | _ -> Ok ()
      in
      let mode = mode land lnot proc.Proc.umask in
      let* _st = fs.Fsops.mknod (Proc.vfs_cred proc) dir name ~kind ~mode in
      Ok ())

let unlink t proc path =
  charge t;
  let* () = fault_check t proc "unlink" in
  with_parent t proc path (fun fs dir name ->
      fs.Fsops.unlink (Proc.vfs_cred proc) dir name)

let rmdir t proc path =
  charge t;
  let* () = fault_check t proc "rmdir" in
  with_parent t proc path (fun fs dir name ->
      fs.Fsops.rmdir (Proc.vfs_cred proc) dir name)

let symlink t proc ~target ~linkpath =
  charge t;
  with_parent t proc linkpath (fun fs dir name ->
      let* _st = fs.Fsops.symlink (Proc.vfs_cred proc) dir name ~target in
      Ok ())

let readlink t proc path =
  charge t;
  let* v = resolve_cwd ~follow:false t proc path in
  v.Proc.v_mount.Mount.m_fs.Fsops.readlink v.Proc.v_ino

let rename t proc ~src ~dst =
  charge t;
  let* () = fault_check t proc "rename" in
  let* sdir, sname = resolve_parent t proc src in
  let* ddir, dname = resolve_parent t proc dst in
  if sdir.Proc.v_mount.Mount.m_id <> ddir.Proc.v_mount.Mount.m_id then
    Error Errno.EXDEV
  else if sdir.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else
    sdir.Proc.v_mount.Mount.m_fs.Fsops.rename (Proc.vfs_cred proc)
      sdir.Proc.v_ino sname ddir.Proc.v_ino dname

let link t proc ~target ~linkpath =
  charge t;
  let* tv = resolve_cwd ~follow:false t proc target in
  let* ldir, lname = resolve_parent t proc linkpath in
  if tv.Proc.v_mount.Mount.m_id <> ldir.Proc.v_mount.Mount.m_id then
    Error Errno.EXDEV
  else if ldir.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else
    let* _st =
      ldir.Proc.v_mount.Mount.m_fs.Fsops.link (Proc.vfs_cred proc)
        ~src:tv.Proc.v_ino ~dir:ldir.Proc.v_ino ~name:lname
    in
    Ok ()

(* linkat(src_fd, "", dst, AT_EMPTY_PATH): hardlink an open inode. *)
let link_fd t proc fdn ~linkpath =
  charge t;
  let* f = file_of_fd proc fdn in
  let* ldir, lname = resolve_parent t proc linkpath in
  if f.Proc.of_vnode.Proc.v_mount.Mount.m_id <> ldir.Proc.v_mount.Mount.m_id then
    Error Errno.EXDEV
  else if ldir.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else
    let* _st =
      ldir.Proc.v_mount.Mount.m_fs.Fsops.link (Proc.vfs_cred proc)
        ~src:f.Proc.of_vnode.Proc.v_ino ~dir:ldir.Proc.v_ino ~name:lname
    in
    Ok ()

let setattr_path t proc path sa =
  charge t;
  let* v = resolve_cwd t proc path in
  if v.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else
    let* _st = v.Proc.v_mount.Mount.m_fs.Fsops.setattr (Proc.vfs_cred proc) v.Proc.v_ino sa in
    Ok ()

let chmod t proc path mode =
  setattr_path t proc path { Types.setattr_none with Types.sa_mode = Some mode }

let chown t proc path ~uid ~gid =
  setattr_path t proc path { Types.setattr_none with Types.sa_uid = uid; sa_gid = gid }

let truncate t proc path size =
  setattr_path t proc path { Types.setattr_none with Types.sa_size = Some size }

let utimens t proc path ~atime ~mtime =
  setattr_path t proc path { Types.setattr_none with Types.sa_atime = atime; sa_mtime = mtime }

let readdir t proc path =
  charge t;
  let* () = fault_check t proc "readdir" in
  let* v = resolve_cwd t proc path in
  v.Proc.v_mount.Mount.m_fs.Fsops.readdir (Proc.vfs_cred proc) v.Proc.v_ino

let setxattr t proc path name value =
  charge t;
  let* v = resolve_cwd t proc path in
  if v.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else v.Proc.v_mount.Mount.m_fs.Fsops.setxattr (Proc.vfs_cred proc) v.Proc.v_ino name value

let getxattr t proc path name =
  charge t;
  let* v = resolve_cwd t proc path in
  v.Proc.v_mount.Mount.m_fs.Fsops.getxattr v.Proc.v_ino name

let listxattr t proc path =
  charge t;
  let* v = resolve_cwd t proc path in
  v.Proc.v_mount.Mount.m_fs.Fsops.listxattr v.Proc.v_ino

let removexattr t proc path name =
  charge t;
  let* v = resolve_cwd t proc path in
  if v.Proc.v_mount.Mount.m_ro then Error Errno.EROFS
  else v.Proc.v_mount.Mount.m_fs.Fsops.removexattr (Proc.vfs_cred proc) v.Proc.v_ino name

let statfs t proc path =
  charge t;
  let* v = resolve_cwd t proc path in
  Ok (v.Proc.v_mount.Mount.m_fs.Fsops.statfs ())

let name_to_handle_at t proc ?(follow = true) path =
  charge t;
  let* v = resolve_cwd ~follow t proc path in
  let* h = v.Proc.v_mount.Mount.m_fs.Fsops.export_handle v.Proc.v_ino in
  Ok (v.Proc.v_mount.Mount.m_fs.Fsops.fs_id, h)

let open_by_handle_at t proc ?(flags = [ Types.O_RDONLY ]) (fs_id, handle) =
  charge t;
  (* Search the process's namespace for the filesystem. *)
  let ns = proc.Proc.ns.Proc.mnt in
  let found =
    Hashtbl.fold
      (fun _ m acc ->
        if m.Mount.m_fs.Fsops.fs_id = fs_id then Some m else acc)
      ns.Mount.mounts None
  in
  match found with
  | None -> Error Errno.EINVAL
  | Some m ->
      let* ino = m.Mount.m_fs.Fsops.open_by_handle handle in
      let* fh = m.Mount.m_fs.Fsops.open_ (Proc.vfs_cred proc) ino flags in
      let v = { Proc.v_mount = m; v_ino = ino } in
      let entry =
        Proc.File { of_vnode = v; of_fh = fh; of_flags = flags; of_path = "<handle>"; of_offset = 0; of_refs = 1 }
      in
      Ok (Proc.alloc_fd proc entry)

(* --- directories, roots, processes ------------------------------------ *)

let chdir t proc path =
  charge t;
  let* v = resolve_cwd t proc path in
  let* st = vnode_stat v in
  if st.Types.st_kind <> Types.Dir then Error Errno.ENOTDIR
  else begin
    proc.Proc.cwd <- v;
    Ok ()
  end

let chroot t proc path =
  charge t;
  if not (Caps.Set.mem Caps.CAP_SYS_CHROOT proc.Proc.cred.Proc.caps) then
    Error Errno.EPERM
  else
    let* v = resolve_cwd t proc path in
    let* st = vnode_stat v in
    if st.Types.st_kind <> Types.Dir then Error Errno.ENOTDIR
    else begin
      proc.Proc.root <- v;
      proc.Proc.cwd <- v;
      Ok ()
    end

let fork t proc =
  charge t;
  count t "os.proc.forks" 1;
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  (* fds are shared open file descriptions, Linux-style. *)
  let fds = Hashtbl.copy proc.Proc.fds in
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Proc.File f -> f.Proc.of_refs <- f.Proc.of_refs + 1
      | Proc.Pipe_r p -> Pipe.add_reader p
      | Proc.Pipe_w p -> Pipe.add_writer p
      | _ -> ())
    fds;
  let child =
    {
      proc with
      Proc.pid;
      ppid = proc.Proc.pid;
      cred = { proc.Proc.cred with Proc.uid = proc.Proc.cred.Proc.uid };
      ns =
        {
          Proc.mnt = proc.Proc.ns.Proc.mnt;
          pid_ns = proc.Proc.ns.Proc.pid_ns;
          net = proc.Proc.ns.Proc.net;
          uts = proc.Proc.ns.Proc.uts;
          ipc = proc.Proc.ns.Proc.ipc;
          user = proc.Proc.ns.Proc.user;
          cgroup_ns = proc.Proc.ns.Proc.cgroup_ns;
        };
      fds;
      env = proc.Proc.env;
      alive = true;
      exit_code = None;
    }
  in
  Hashtbl.replace t.procs pid child;
  (match Hashtbl.find_opt t.cgroups proc.Proc.cgroup with
  | Some cg -> cg.cg_procs <- pid :: cg.cg_procs
  | None -> ());
  child

let exit t proc code =
  charge t;
  if proc.Proc.alive then begin
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) proc.Proc.fds [] in
    List.iter (fun fd -> ignore (close t proc fd)) fds;
    proc.Proc.alive <- false;
    proc.Proc.exit_code <- Some code;
    (match Hashtbl.find_opt t.cgroups proc.Proc.cgroup with
    | Some cg -> cg.cg_procs <- List.filter (fun p -> p <> proc.Proc.pid) cg.cg_procs
    | None -> ())
  end

(* --- namespaces -------------------------------------------------------- *)

let unshare t proc kinds =
  charge t;
  if not (Caps.Set.mem Caps.CAP_SYS_ADMIN proc.Proc.cred.Proc.caps) then
    Error Errno.EPERM
  else begin
    count t "os.ns.unshare" (List.length kinds);
    List.iter
      (fun kind ->
        match kind with
        | Namespace.Mnt ->
            let ns = Mount.clone_ns proc.Proc.ns.Proc.mnt in
            register_mnt_ns t ns;
            (* Re-anchor root/cwd in the cloned namespace: find the clone of
               the mount they pointed into. *)
            let rebase v =
              let old = v.Proc.v_mount in
              let found =
                Hashtbl.fold
                  (fun _ m acc ->
                    if
                      m.Mount.m_fs.Fsops.fs_id = old.Mount.m_fs.Fsops.fs_id
                      && m.Mount.m_root = old.Mount.m_root
                      && m.Mount.m_mp = None = (old.Mount.m_mp = None)
                    then Some m
                    else acc)
                  ns.Mount.mounts None
              in
              match found with
              | Some m -> { v with Proc.v_mount = m }
              | None -> v
            in
            proc.Proc.root <- rebase proc.Proc.root;
            proc.Proc.cwd <- rebase proc.Proc.cwd;
            proc.Proc.ns.Proc.mnt <- ns
        | Namespace.Pid ->
            proc.Proc.ns.Proc.pid_ns <-
              { Namespace.pns_id = fresh_tag t; parent = Some proc.Proc.ns.Proc.pid_ns }
        | Namespace.Net -> proc.Proc.ns.Proc.net <- fresh_ns t Namespace.Net
        | Namespace.Uts ->
            let ns = fresh_ns t Namespace.Uts in
            Hashtbl.replace t.hostnames ns.Namespace.id
              (Option.value ~default:"host"
                 (Hashtbl.find_opt t.hostnames proc.Proc.ns.Proc.uts.Namespace.id));
            proc.Proc.ns.Proc.uts <- ns
        | Namespace.Ipc -> proc.Proc.ns.Proc.ipc <- fresh_ns t Namespace.Ipc
        | Namespace.User ->
            proc.Proc.ns.Proc.user <-
              { Namespace.uns_id = fresh_tag t; uid_map = []; gid_map = [] }
        | Namespace.Cgroup -> proc.Proc.ns.Proc.cgroup_ns <- fresh_ns t Namespace.Cgroup)
      kinds;
    Ok ()
  end

(* setns(2): join the namespaces of [target_pid] for the given kinds.  This
   is the core primitive CNTR uses to attach (§3.2.2, §3.2.3). *)
let setns t proc ~target_pid kinds =
  charge t;
  if not (Caps.Set.mem Caps.CAP_SYS_ADMIN proc.Proc.cred.Proc.caps) then
    Error Errno.EPERM
  else
    let* target = proc_by_pid t target_pid in
    count t "os.ns.setns" (List.length kinds);
    List.iter
      (fun kind ->
        match kind with
        | Namespace.Mnt ->
            proc.Proc.ns.Proc.mnt <- target.Proc.ns.Proc.mnt;
            proc.Proc.root <- target.Proc.root;
            proc.Proc.cwd <- target.Proc.cwd
        | Namespace.Pid -> proc.Proc.ns.Proc.pid_ns <- target.Proc.ns.Proc.pid_ns
        | Namespace.Net -> proc.Proc.ns.Proc.net <- target.Proc.ns.Proc.net
        | Namespace.Uts -> proc.Proc.ns.Proc.uts <- target.Proc.ns.Proc.uts
        | Namespace.Ipc -> proc.Proc.ns.Proc.ipc <- target.Proc.ns.Proc.ipc
        | Namespace.User -> proc.Proc.ns.Proc.user <- target.Proc.ns.Proc.user
        | Namespace.Cgroup -> proc.Proc.ns.Proc.cgroup_ns <- target.Proc.ns.Proc.cgroup_ns)
      kinds;
    Ok ()

(* --- mounts ------------------------------------------------------------ *)

let require_admin proc =
  if Caps.Set.mem Caps.CAP_SYS_ADMIN proc.Proc.cred.Proc.caps then Ok ()
  else Error Errno.EPERM

(* Propagate a new mount to peers of a shared parent (other namespaces that
   share the peer group see the mount appear). *)
let propagate_mount t ~parent ~mp_ino ~fs ~root_ino ~ro =
  match parent.Mount.m_prop with
  | Mount.Private | Mount.Slave _ -> ()
  | Mount.Shared group ->
      let replica_group = Mount.next_peer_group () in
      Hashtbl.iter
        (fun _ ns ->
          Hashtbl.iter
            (fun _ m ->
              if
                m.Mount.m_id <> parent.Mount.m_id
                && m.Mount.m_prop = Mount.Shared group
                && m.Mount.m_fs.Fsops.fs_id = parent.Mount.m_fs.Fsops.fs_id
              then
                ignore
                  (Mount.add ns ~parent:m.Mount.m_id ~mp_ino ~fs ~root_ino
                     ~prop:(Mount.Shared replica_group) ~ro))
            ns.Mount.mounts)
        t.namespaces

let mount_at t proc ~fs ?root_ino target =
  charge t;
  let* () = require_admin proc in
  let* v = resolve_cwd t proc target in
  let* st = vnode_stat v in
  if st.Types.st_kind <> Types.Dir then Error Errno.ENOTDIR
  else begin
    let ns = proc.Proc.ns.Proc.mnt in
    let parent = v.Proc.v_mount in
    let root_ino = Option.value root_ino ~default:fs.Fsops.root in
    let m =
      Mount.add ns ~parent:parent.Mount.m_id ~mp_ino:v.Proc.v_ino ~fs ~root_ino
        ~prop:Mount.Private ~ro:false
    in
    propagate_mount t ~parent ~mp_ino:v.Proc.v_ino ~fs ~root_ino ~ro:false;
    Ok m
  end

(* bind mount: graft the subtree at [src] onto [dst]. *)
let bind_mount t proc ~src ~dst =
  charge t;
  let* () = require_admin proc in
  let* sv = resolve_cwd t proc src in
  let* dv = resolve_cwd t proc dst in
  let* sst = vnode_stat sv in
  let* dst_st = vnode_stat dv in
  (* A bind mount of a file onto a file is allowed (CNTR uses this for
     /etc/passwd etc.); kinds must agree in dir-ness. *)
  let src_is_dir = sst.Types.st_kind = Types.Dir in
  let dst_is_dir = dst_st.Types.st_kind = Types.Dir in
  if src_is_dir <> dst_is_dir then
    Error (if dst_is_dir then Errno.ENOTDIR else Errno.EISDIR)
  else begin
    let ns = proc.Proc.ns.Proc.mnt in
    let parent = dv.Proc.v_mount in
    let fs = sv.Proc.v_mount.Mount.m_fs in
    let m =
      Mount.add ns ~parent:parent.Mount.m_id ~mp_ino:dv.Proc.v_ino ~fs
        ~root_ino:sv.Proc.v_ino ~prop:Mount.Private ~ro:false
    in
    propagate_mount t ~parent ~mp_ino:dv.Proc.v_ino ~fs ~root_ino:sv.Proc.v_ino ~ro:false;
    Ok m
  end

let umount t proc target =
  charge t;
  let* () = require_admin proc in
  let* v = resolve_cwd t proc target in
  let ns = proc.Proc.ns.Proc.mnt in
  let m = v.Proc.v_mount in
  if v.Proc.v_ino <> m.Mount.m_root then Error Errno.EINVAL
  else if Mount.children ns m.Mount.m_id <> [] then Error Errno.EBUSY
  else if ns.Mount.root = m.Mount.m_id then Error Errno.EBUSY
  else begin
    Mount.remove ns m.Mount.m_id;
    Ok ()
  end

let make_rprivate t proc =
  charge t;
  let* () = require_admin proc in
  Mount.make_rprivate proc.Proc.ns.Proc.mnt;
  Ok ()

(* Move every pre-existing mount of the namespace so CNTR can re-anchor the
   application filesystem under the nested root (step #3).  Implemented as
   re-pointing the parent/mountpoint of the old root's children; the caller
   provides the new location. *)

(* --- hostname, cgroups, rlimits, LSM ----------------------------------- *)

let gethostname t proc =
  Option.value ~default:"host" (Hashtbl.find_opt t.hostnames proc.Proc.ns.Proc.uts.Namespace.id)

let sethostname t proc name =
  charge t;
  let* () = require_admin proc in
  Hashtbl.replace t.hostnames proc.Proc.ns.Proc.uts.Namespace.id name;
  Ok ()

let cgroup_create t path =
  if not (Hashtbl.mem t.cgroups path) then
    Hashtbl.replace t.cgroups path { cg_procs = [] }

let cgroup_attach t proc ~cgroup =
  charge t;
  cgroup_create t cgroup;
  (match Hashtbl.find_opt t.cgroups proc.Proc.cgroup with
  | Some old -> old.cg_procs <- List.filter (fun p -> p <> proc.Proc.pid) old.cg_procs
  | None -> ());
  let cg = Hashtbl.find t.cgroups cgroup in
  cg.cg_procs <- proc.Proc.pid :: cg.cg_procs;
  proc.Proc.cgroup <- cgroup

let cgroup_procs t cgroup =
  match Hashtbl.find_opt t.cgroups cgroup with
  | Some cg -> List.sort compare cg.cg_procs
  | None -> []

let set_rlimit_fsize _t proc limit = proc.Proc.rlimit_fsize <- limit

let apply_lsm_profile _t proc profile = proc.Proc.lsm_profile <- profile

(* --- pipes, splice, sockets, epoll ------------------------------------- *)

let pipe t proc =
  charge t;
  let p = Pipe.create () in
  let rfd = Proc.alloc_fd proc (Proc.Pipe_r p) in
  let wfd = Proc.alloc_fd proc (Proc.Pipe_w p) in
  (rfd, wfd)

(* splice(2): move bytes between two fds without copying through
   userspace.  Costs come from the shared Datapath model: the fixed setup
   per call, plus a per-page remap for the bytes moved — no per-KiB copy,
   which is the point of splice.

   The pull from the source is clamped (Datapath.clamp) to what the
   destination can accept right now, so a partial sink can never strand
   bytes read out of the source: either the whole chunk moves, or it
   stays queued at the source.  A full destination is EAGAIN before
   anything is consumed. *)
let splice t proc ~fd_in ~fd_out ~len =
  charge t;
  Clock.consume_int t.clock (Datapath.setup_ns t.cost);
  let* inp = fd_entry proc fd_in in
  let* out = fd_entry proc fd_out in
  let* cap =
    match out with
    | Proc.Pipe_w p ->
        if not (Pipe.has_readers p) then Error Errno.EPIPE else Ok (Pipe.room p)
    | Proc.Sock_conn ep -> Sock.send_capacity ep
    | Proc.File _ | Proc.Custom _ -> Ok max_int
    | _ -> Error Errno.EINVAL
  in
  let len = Datapath.clamp ~room:cap len in
  if len = 0 then Error Errno.EAGAIN
  else
    let* data =
      match inp with
      | Proc.Pipe_r p -> Pipe.read p ~len
      | Proc.Sock_conn ep -> Sock.recv ep ~len
      | Proc.File f -> read_file t proc f ~len
      | Proc.Custom c -> c.Proc.c_read ~len
      | _ -> Error Errno.EINVAL
    in
    if data = "" then Ok 0
    else
      let* n =
        match out with
        | Proc.Pipe_w p -> Pipe.write p data
        | Proc.Sock_conn ep -> Sock.send ep data
        | Proc.File f -> (
            let fs = f.Proc.of_vnode.Proc.v_mount.Mount.m_fs in
            let* n = fs.Fsops.write (Proc.vfs_cred proc) f.Proc.of_fh ~off:f.Proc.of_offset data in
            f.Proc.of_offset <- f.Proc.of_offset + n;
            Ok n)
        | Proc.Custom c -> c.Proc.c_write data
        | _ -> Error Errno.EINVAL
      in
      Clock.consume_int t.clock (Datapath.page_ns t.cost n);
      Ok n

(* shutdown(fd, SHUT_WR): half-close the send direction; the peer drains
   queued bytes then reads EOF.  Sockets only. *)
let shutdown_write t proc fdn =
  charge t;
  let* entry = fd_entry proc fdn in
  match entry with
  | Proc.Sock_conn ep ->
      Sock.shutdown_write ep;
      Ok ()
  | _ -> Error Errno.ENOTSOCK

(* Abortive close (SO_LINGER 0 + close): the fd goes away and both ends of
   the connection observe ECONNRESET, queued bytes discarded. *)
let socket_abort t proc fdn =
  charge t;
  let* entry = fd_entry proc fdn in
  match entry with
  | Proc.Sock_conn ep ->
      Hashtbl.remove proc.Proc.fds fdn;
      epoll_forget proc fdn;
      Sock.abort ep;
      Ok ()
  | _ -> Error Errno.ENOTSOCK

(* SCM_RIGHTS-style fd passing: the open description moves from [src]'s
   table into [dst]'s (ownership transfers, no refcount change).  Returns
   the fd number in [dst]. *)
let pass_fd t ~src ~dst fdn =
  charge t;
  let* entry = fd_entry src fdn in
  Hashtbl.remove src.Proc.fds fdn;
  Ok (Proc.alloc_fd dst entry)

let socket_listen ?backlog t proc path =
  charge t;
  let* dir, name = resolve_parent t proc path in
  let fs = dir.Proc.v_mount.Mount.m_fs in
  let cred = Proc.vfs_cred proc in
  let* () =
    match fs.Fsops.lookup cred dir.Proc.v_ino name with
    | Ok _ -> Error Errno.EADDRINUSE
    | Error Errno.ENOENT -> Ok ()
    | Error e -> Error e
  in
  let* st = fs.Fsops.mknod cred dir.Proc.v_ino name ~kind:Types.Sock ~mode:0o755 in
  let listener = Sock.listen ?backlog ~path () in
  Hashtbl.replace t.sock_bindings (fs.Fsops.fs_id, st.Types.st_ino) listener;
  Ok (Proc.alloc_fd proc (Proc.Sock_listen listener))

let socket_connect t proc path =
  charge t;
  let* v = resolve_cwd t proc path in
  let* st = vnode_stat v in
  if st.Types.st_kind <> Types.Sock then Error Errno.ECONNREFUSED
  else
    (* The binding is keyed by the *presenting* filesystem's identity: a
       socket file seen through a FUSE mount has a different (fs_id, ino)
       than the underlying socket, so the connection fails — the paper's
       motivation for the CNTR socket proxy. *)
    match
      Hashtbl.find_opt t.sock_bindings
        (v.Proc.v_mount.Mount.m_fs.Fsops.fs_id, v.Proc.v_ino)
    with
    | None -> Error Errno.ECONNREFUSED
    | Some listener ->
        let* ep = Sock.connect listener in
        Ok (Proc.alloc_fd proc (Proc.Sock_conn ep))

let socket_accept t proc fdn =
  charge t;
  let* entry = fd_entry proc fdn in
  match entry with
  | Proc.Sock_listen l ->
      let* ep = Sock.accept l in
      Ok (Proc.alloc_fd proc (Proc.Sock_conn ep))
  | _ -> Error Errno.EINVAL

let epoll_create t proc =
  charge t;
  Proc.alloc_fd proc (Proc.Epoll_fd (Epoll.create ()))

let probes_of_entry entry : Epoll.probes =
  match entry with
  | Proc.Pipe_r p -> { Epoll.p_readable = (fun () -> Pipe.readable p); p_writable = (fun () -> false) }
  | Proc.Pipe_w p -> { Epoll.p_readable = (fun () -> false); p_writable = (fun () -> Pipe.writable p) }
  | Proc.Sock_conn ep ->
      { Epoll.p_readable = (fun () -> Sock.readable ep); p_writable = (fun () -> Sock.writable ep) }
  | Proc.Sock_listen l ->
      { Epoll.p_readable = (fun () -> Sock.pending l > 0); p_writable = (fun () -> false) }
  | Proc.Custom c -> { Epoll.p_readable = c.Proc.c_readable; p_writable = c.Proc.c_writable }
  | Proc.File _ | Proc.Epoll_fd _ ->
      { Epoll.p_readable = (fun () -> true); p_writable = (fun () -> true) }

let epoll_of proc fdn =
  match Proc.fd proc fdn with
  | Some (Proc.Epoll_fd e) -> Ok e
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

(* Wire the epoll's wakeup callback into the object's waitqueue so state
   transitions fire {!Epoll.fire_notify}.  Wakers are append-only: adding
   the same fd twice stacks a (harmless, spurious) second wakeup. *)
let watch_entry entry notify =
  match entry with
  | Proc.Pipe_r p | Proc.Pipe_w p -> Pipe.add_waker p notify
  | Proc.Sock_conn ep -> Sock.add_waker ep notify
  | Proc.Sock_listen l -> Sock.add_listener_waker l notify
  | Proc.File _ | Proc.Epoll_fd _ | Proc.Custom _ -> ()

let epoll_add t proc ~epfd ~fd ~interest =
  charge t;
  let* ep = epoll_of proc epfd in
  let* entry = fd_entry proc fd in
  Epoll.add ep ~fd ~interest ~probes:(probes_of_entry entry);
  watch_entry entry (fun () -> Epoll.fire_notify ep);
  Ok ()

(* EPOLL_CTL_MOD re-arm: reset the fd's edge state so the next
   epoll_wait_edge reports current readiness afresh.  A consumer that
   drained to EAGAIN re-arms before parking, closing the window where a
   readiness flap between two edge waits would go unreported. *)
let epoll_rearm t proc ~epfd ~fd =
  charge t;
  let* ep = epoll_of proc epfd in
  Epoll.rearm ep ~fd;
  Ok ()

let epoll_del t proc ~epfd ~fd =
  charge t;
  let* ep = epoll_of proc epfd in
  Epoll.remove ep ~fd;
  Ok ()

let epoll_wait t proc epfd =
  charge t;
  let* ep = epoll_of proc epfd in
  Ok (Epoll.wait ep)

let epoll_wait_edge t proc epfd =
  charge t;
  let* ep = epoll_of proc epfd in
  Ok (Epoll.wait_edge ep)

(* Simulation hook, not a syscall: install the callback the waitqueues of
   watched fds fire.  A reactor parks on its scheduler and this wakes it. *)
let epoll_set_notify _t proc ~epfd f =
  let* ep = epoll_of proc epfd in
  Epoll.set_notify ep f;
  Ok ()

(* --- programs and exec -------------------------------------------------- *)

let register_program t name prog = Hashtbl.replace t.programs name prog

let program_exists t name = Hashtbl.mem t.programs name

(* Read a whole file through the filesystem (charging its costs). *)
let read_whole t proc path =
  let* fdn = open_ t proc path [ Types.O_RDONLY ] ~mode:0 in
  let buf = Buffer.create 4096 in
  let rec go () =
    let* chunk = read t proc fdn ~len:(256 * 1024) in
    if chunk = "" then Ok ()
    else begin
      Buffer.add_string buf chunk;
      go ()
    end
  in
  let* () = go () in
  let* () = close t proc fdn in
  Ok (Buffer.contents buf)

(* execve: load the binary via the filesystem (mmap), decode the binfmt
   header, and run the registered program synchronously.  Returns the
   program's exit code. *)
let rec exec t proc path args =
  charge t;
  count t "os.proc.execs" 1;
  let* () = access t proc path Types.x_ok in
  let* v = resolve_cwd t proc path in
  let fs = v.Proc.v_mount.Mount.m_fs in
  let* fh = fs.Fsops.open_ (Proc.vfs_cred proc) v.Proc.v_ino [ Types.O_RDONLY ] in
  (* Executing requires mmap support (FUSE: mmap and direct I/O are
     mutually exclusive, which is why CNTR chose mmap — §5.1). *)
  if not (fs.Fsops.supports_mmap fh) then begin
    fs.Fsops.release fh;
    Error Errno.ENOSYS
  end
  else begin
    fs.Fsops.release fh;
    let* content = read_whole t proc path in
    match Binfmt.parse content with
    | None -> Error Errno.ENOSYS
    | Some (Binfmt.Script interp) -> exec t proc interp (interp :: path :: List.tl args)
    | Some (Binfmt.Bin name) -> (
        match Hashtbl.find_opt t.programs name with
        | None -> Error Errno.ENOSYS
        | Some prog ->
            let saved_comm = proc.Proc.comm in
            proc.Proc.comm <- name;
            let code = prog t proc args in
            proc.Proc.comm <- saved_comm;
            Ok code)
  end

(* --- chardevs ----------------------------------------------------------- *)

let register_chardev t ~major ~minor dev = Hashtbl.replace t.chardevs (major, minor) dev

(* --- diagnostics -------------------------------------------------------- *)

let mounts_of_ns ns =
  Hashtbl.fold (fun _ m acc -> m :: acc) ns.Mount.mounts []
  |> List.sort (fun a b -> compare a.Mount.m_id b.Mount.m_id)
