(** /dev: a RAM filesystem populated with the usual character devices,
    whose behaviors (null, zero, urandom, tty) register with the kernel.
    /dev/fuse's open behavior is installed separately by the FUSE layer. *)

val fuse_major : int
val fuse_minor : int

(** Create a devtmpfs instance and register the standard devices. *)
val create : kernel:Kernel.t -> Repro_vfs.Nativefs.t
