(* Minimal epoll: an interest set of fd numbers with readiness probes.  The
   simulation is single-threaded, so [wait] simply reports which registered
   fds are currently ready (level-triggered), while [wait_edge] reports
   only false->true readiness transitions since the previous [wait_edge] —
   the EPOLLET contract: a partially drained fd stays ready and is NOT
   reported again until it empties and refills.

   [set_notify] installs the wakeup callback the kernel wires to the
   watched objects' waitqueues (pipe/socket wakers), so a reactor can park
   until something actually changes instead of busy polling. *)

type interest = { want_in : bool; want_out : bool }

type probes = {
  p_readable : unit -> bool;
  p_writable : unit -> bool;
}

type event = { ev_fd : int; ev_in : bool; ev_out : bool }

type t = {
  watched : (int, interest * probes) Hashtbl.t;
  seen : (int, bool * bool) Hashtbl.t; (* readiness at the last wait_edge *)
  mutable notify : (unit -> unit) option;
}

let create () = { watched = Hashtbl.create 8; seen = Hashtbl.create 8; notify = None }

let add t ~fd ~interest ~probes =
  Hashtbl.replace t.watched fd (interest, probes);
  (* (Re-)arming resets edge state: the next wait_edge reports current
     readiness as a fresh transition, as EPOLL_CTL_MOD does. *)
  Hashtbl.remove t.seen fd

let modify = add

(* EPOLL_CTL_MOD-style re-arm without touching probes or waitqueues: the
   next wait_edge sees current readiness as a fresh transition.  Pumps call
   this before parking so a readiness flap between two wait_edge samples
   cannot be lost. *)
let rearm t ~fd = Hashtbl.remove t.seen fd

let remove t ~fd =
  Hashtbl.remove t.watched fd;
  Hashtbl.remove t.seen fd

let set_notify t f = t.notify <- f

let fire_notify t = match t.notify with Some f -> f () | None -> ()

(* Poll all registered fds; returns ready events (level-triggered). *)
let wait t =
  Hashtbl.fold
    (fun fd (interest, probes) acc ->
      let ev_in = interest.want_in && probes.p_readable () in
      let ev_out = interest.want_out && probes.p_writable () in
      if ev_in || ev_out then { ev_fd = fd; ev_in; ev_out } :: acc else acc)
    t.watched []
  |> List.sort (fun a b -> compare a.ev_fd b.ev_fd)

(* Edge-triggered poll: report only fds whose readiness turned on since the
   last [wait_edge]. *)
let wait_edge t =
  Hashtbl.fold
    (fun fd (interest, probes) acc ->
      let cur_in = interest.want_in && probes.p_readable () in
      let cur_out = interest.want_out && probes.p_writable () in
      let old_in, old_out =
        match Hashtbl.find_opt t.seen fd with Some s -> s | None -> (false, false)
      in
      Hashtbl.replace t.seen fd (cur_in, cur_out);
      let ev_in = cur_in && not old_in in
      let ev_out = cur_out && not old_out in
      if ev_in || ev_out then { ev_fd = fd; ev_in; ev_out } :: acc else acc)
    t.watched []
  |> List.sort (fun a b -> compare a.ev_fd b.ev_fd)

let watched_count t = Hashtbl.length t.watched
