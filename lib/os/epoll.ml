(* Minimal epoll: an interest set of fd numbers with readiness probes.  The
   simulation is single-threaded, so [wait] simply reports which registered
   fds are currently ready — event loops (the CNTR socket proxy) pump until
   no fd is ready. *)

type interest = { want_in : bool; want_out : bool }

type probes = {
  p_readable : unit -> bool;
  p_writable : unit -> bool;
}

type event = { ev_fd : int; ev_in : bool; ev_out : bool }

type t = {
  watched : (int, interest * probes) Hashtbl.t;
}

let create () = { watched = Hashtbl.create 8 }

let add t ~fd ~interest ~probes = Hashtbl.replace t.watched fd (interest, probes)

let modify = add

let remove t ~fd = Hashtbl.remove t.watched fd

(* Poll all registered fds; returns ready events (level-triggered). *)
let wait t =
  Hashtbl.fold
    (fun fd (interest, probes) acc ->
      let ev_in = interest.want_in && probes.p_readable () in
      let ev_out = interest.want_out && probes.p_writable () in
      if ev_in || ev_out then { ev_fd = fd; ev_in; ev_out } :: acc else acc)
    t.watched []
  |> List.sort (fun a b -> compare a.ev_fd b.ev_fd)

let watched_count t = Hashtbl.length t.watched
