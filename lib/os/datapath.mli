(** The shared byte-movement cost model (§3.2.4).

    Every layer that moves bulk bytes — the kernel's splice(2), the FUSE
    transport's READ/WRITE payload legs, and the proxy's forwarding pumps —
    meters them through this one module, so the planes cannot drift apart:
    a page spliced by the proxy costs exactly what a page spliced under a
    FUSE reply costs.

    Two pricing regimes:
    - [copy_ns]: the double-buffer baseline — per-KiB memcpy through
      userspace.
    - [splice_ns]: zero-copy — a fixed per-call setup plus a per-page
      remap, independent of byte count within a page.

    The break-even point falls out of {!Repro_util.Cost.default}: splice
    wins for any transfer past a few pages, which is the paper's E2/E9
    story. *)

(** Preferred transfer unit for streaming pumps: one splice(2) call's
    worth.  Both the proxy relay and benchmarks chunk at this size. *)
val chunk : int

(** Default in-flight buffer for a forwarding pump (one [chunk]). *)
val default_buffer : int

(** [clamp ~room len] is the byte count a bounded sink can accept right
    now: [min len room], never negative.  Kernel splice clamps its pull to
    this before consuming from the source, so a partial sink can never
    strand bytes. *)
val clamp : room:int -> int -> int

(** Fixed setup charged per splice(2) call, moved bytes or not. *)
val setup_ns : Repro_util.Cost.t -> int

(** Per-page remap charge for [bytes] actually moved. *)
val page_ns : Repro_util.Cost.t -> int -> int

(** Full splice price for one call moving [bytes]: setup plus pages.
    Equals {!Repro_util.Cost.splice_cost}. *)
val splice_ns : Repro_util.Cost.t -> int -> int

(** The copy baseline those splice prices are measured against: per-KiB
    memcpy ({!Repro_util.Cost.copy_cost}). *)
val copy_ns : Repro_util.Cost.t -> int -> int

(** The context switch a splice-write FUSE channel pays per request:
    handing the payload to the kernel-side pipe forces an extra
    transition (§3.2.4).  Charged by the driver when [Opts.splice_write]
    is on. *)
val splice_write_switch_ns : Repro_util.Cost.t -> int
