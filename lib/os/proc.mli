(** Process records: credentials, namespace set, working/root directory
    (vnodes), file-descriptor table, environment, cgroup and LSM context —
    the "container context" CNTR gathers in step #1 and re-applies in step
    #3 (§3.2 of the paper).  [custom_payload] is the extension point for
    driver-specific fds (/dev/fuse connections). *)

open Repro_util
open Repro_vfs

type vnode = { v_mount : Mount.mount; v_ino : Types.ino; }
val vnode_eq : vnode -> vnode -> bool
type os_cred = {
  mutable uid : int;
  mutable gid : int;
  mutable groups : int list;
  mutable caps : Caps.Set.t;
}
type custom_payload = ..
type custom_payload += No_payload
type custom_fd = {
  c_name : string;
  c_read : len:int -> (string, Errno.t) result;
  c_write : string -> (int, Errno.t) result;
  c_close : unit -> unit;
  c_readable : unit -> bool;
  c_writable : unit -> bool;
  c_payload : custom_payload;
}
type open_file = {
  of_vnode : vnode;
  of_fh : Fsops.fh;
  of_flags : Types.open_flag list;
  of_path : string;
  mutable of_offset : int;
  mutable of_refs : int;
}
type fd_entry =
    File of open_file
  | Pipe_r of Pipe.t
  | Pipe_w of Pipe.t
  | Sock_listen of Sock.listener
  | Sock_conn of Sock.endpoint
  | Epoll_fd of Epoll.t
  | Custom of custom_fd
type ns_set = {
  mutable mnt : Mount.ns;
  mutable pid_ns : Namespace.pid_ns;
  mutable net : Namespace.t;
  mutable uts : Namespace.t;
  mutable ipc : Namespace.t;
  mutable user : Namespace.user_ns;
  mutable cgroup_ns : Namespace.t;
}
type t = {
  pid : int;
  mutable ppid : int;
  mutable comm : string;
  cred : os_cred;
  mutable ns : ns_set;
  mutable cwd : vnode;
  mutable root : vnode;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable env : (string * string) list;
  mutable cgroup : string;
  mutable lsm_profile : string option;
  mutable rlimit_fsize : int option;
  mutable umask : int;
  mutable alive : bool;
  mutable exit_code : int option;
}
val vfs_cred : t -> Types.cred
val getenv : t -> string -> string option
val setenv : t -> string -> string -> unit
val alloc_fd : t -> fd_entry -> int
val fd : t -> int -> fd_entry option
val is_root : t -> bool
