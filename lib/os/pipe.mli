(** In-kernel pipes: a bounded byte queue with reader/writer reference
    counting.  Used for pipe(2), pseudo-TTY plumbing and splice buffers. *)

open Repro_util

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t

(** Bytes currently queued. *)
val available : t -> int

(** Remaining capacity. *)
val room : t -> int

(** Write as much of [data] as fits; [EPIPE] when all readers are gone,
    [EAGAIN] when full. *)
val write : t -> string -> (int, Errno.t) result

(** Read up to [len] bytes; "" at EOF (no writers), [EAGAIN] when empty but
    writers remain. *)
val read : t -> len:int -> (string, Errno.t) result

val close_reader : t -> unit
val close_writer : t -> unit
val add_reader : t -> unit
val add_writer : t -> unit

(** At least one read end is still open (writes won't [EPIPE]). *)
val has_readers : t -> bool

(** Register a waitqueue callback, fired on every state transition (bytes
    queued or drained, last reader/writer closed).  Wakers are never
    removed — register once per watcher. *)
val add_waker : t -> (unit -> unit) -> unit

(** Poll readiness (for epoll). *)
val readable : t -> bool

val writable : t -> bool
