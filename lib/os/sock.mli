(** Unix-domain stream sockets: listeners with bounded accept backlogs,
    endpoint pairs with per-direction byte queues, half-close and abortive
    (RST) close.  Address binding (socket files) is the kernel's job —
    keyed by filesystem identity, which is why connections through a
    CntrFS view fail and CNTR needs its proxy (§3.2.4). *)

open Repro_util

type endpoint
type listener

val default_backlog : int

(** [backlog] bounds connections awaiting accept (default
    {!default_backlog}); beyond it, [connect] refuses. *)
val listen : ?backlog:int -> path:string -> unit -> listener

(** Connect: enqueues a server endpoint on the backlog, returns the client
    endpoint; [ECONNREFUSED] on a closed listener or a full backlog. *)
val connect : listener -> (endpoint, Errno.t) result

(** Dequeue a pending connection; [EAGAIN] when none. *)
val accept : listener -> (endpoint, Errno.t) result

val send : endpoint -> string -> (int, Errno.t) result
val recv : endpoint -> len:int -> (string, Errno.t) result

(** shutdown(SHUT_WR): the peer drains queued bytes then reads EOF; our
    read side stays usable.  Further sends [EPIPE]. *)
val shutdown_write : endpoint -> unit

val close_endpoint : endpoint -> unit

(** Abortive close (the SO_LINGER-0 RST path): both ends observe
    [ECONNRESET] immediately, queued bytes are discarded. *)
val abort : endpoint -> unit

val close_listener : listener -> unit

(** Room toward the peer: [Ok n] bytes accepted without blocking,
    [EPIPE]/[ECONNRESET] when the direction is dead.  splice(2) clamps its
    reads with this so a partial sink never loses bytes. *)
val send_capacity : endpoint -> (int, Errno.t) result

val readable : endpoint -> bool
val writable : endpoint -> bool

(** Bytes queued for this endpoint to receive (SIOCINQ). *)
val available : endpoint -> int

(** Connections awaiting accept. *)
val pending : listener -> int

(** Register a waitqueue callback on the endpoint (fires on byte-queue
    transitions in either direction and on close). *)
val add_waker : endpoint -> (unit -> unit) -> unit

(** Same, for the listener (fires on new pending connections and close). *)
val add_listener_waker : listener -> (unit -> unit) -> unit
