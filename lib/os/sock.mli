(** Unix-domain stream sockets: listeners with accept backlogs, endpoint
    pairs with per-direction byte queues.  Address binding (socket files)
    is the kernel's job — keyed by filesystem identity, which is why
    connections through a CntrFS view fail and CNTR needs its proxy
    (§3.2.4). *)

open Repro_util

type endpoint
type listener

val listen : path:string -> listener

(** Connect: enqueues a server endpoint on the backlog, returns the client
    endpoint; [ECONNREFUSED] on a closed listener. *)
val connect : listener -> (endpoint, Errno.t) result

(** Dequeue a pending connection; [EAGAIN] when none. *)
val accept : listener -> (endpoint, Errno.t) result

val send : endpoint -> string -> (int, Errno.t) result
val recv : endpoint -> len:int -> (string, Errno.t) result
val close_endpoint : endpoint -> unit
val close_listener : listener -> unit
val readable : endpoint -> bool
val writable : endpoint -> bool

(** Connections awaiting accept. *)
val pending : listener -> int
