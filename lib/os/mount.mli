(** Mount namespaces.  Mounts are keyed Linux-style by (parent mount,
    mountpoint inode), making bind mounts, stacked mounts and chroot
    interact correctly with path walking.  Propagation implements the
    subset CNTR depends on: shared peer groups (the host root), private
    mounts (container namespaces), and recursive privatization — so a
    mount created in CNTR's nested namespace never leaks back into the
    application container (§3.2.3). *)

open Repro_vfs

type propagation = Private | Shared of int | Slave of int

type mount = {
  m_id : int;
  m_ns : int;  (** owning namespace id *)
  m_fs : Fsops.t;
  m_root : Types.ino;  (** root inode of this mount within [m_fs] *)
  mutable m_parent : int option;
  mutable m_mp : (int * Types.ino) option;  (** (parent mount id, mountpoint ino) *)
  mutable m_prop : propagation;
  mutable m_ro : bool;
}

type ns = {
  ns_id : int;
  mounts : (int, mount) Hashtbl.t;
  mutable root : int;  (** root mount id *)
}

val next_mount_id : unit -> int
val next_ns_id : unit -> int
val next_peer_group : unit -> int

(** A fresh namespace rooted at [fs] (or a sub-root of it). *)
val create_ns : fs:Fsops.t -> ?root_ino:Types.ino -> ?prop:propagation -> unit -> ns

val find : ns -> int -> mount option
val root_mount : ns -> mount

(** Topmost mount stacked on the mountpoint (parent [mid], inode [ino]). *)
val mount_on : ns -> mid:int -> ino:Types.ino -> mount option

(** Raw insertion (propagation to peers is the kernel's job). *)
val add :
  ns ->
  parent:int ->
  mp_ino:Types.ino ->
  fs:Fsops.t ->
  root_ino:Types.ino ->
  prop:propagation ->
  ro:bool ->
  mount

val children : ns -> int -> mount list
val remove : ns -> int -> unit

(** Copy every mount into a fresh namespace, preserving structure and peer
    groups (clones of shared mounts stay shared, as in Linux). *)
val clone_ns : ns -> ns

(** mount --make-rprivate /: detach every mount from its peer group. *)
val make_rprivate : ns -> unit

val make_shared : mount -> unit
val mount_count : ns -> int
