(* Synthesized /proc.  CNTR's step #1 reads a container's execution context
   out of here: namespaces, environment, capabilities, cgroup, LSM profile,
   uid/gid maps (§3.2.1).  Each instance is scoped to a PID namespace, so a
   container's /proc only shows its own processes while the host /proc
   shows everything. *)

open Repro_util
open Repro_vfs

type node =
  | Root
  | Pid_dir of int
  | Pid_file of int * string (* status, environ, cmdline, cgroup, mounts, limits, uid_map, gid_map *)
  | Ns_dir of int
  | Ns_file of int * Namespace.kind
  | Attr_dir of int
  | Attr_file of int

let pid_files = [ "status"; "environ"; "cmdline"; "cgroup"; "mounts"; "limits"; "uid_map"; "gid_map" ]

let ino_of_node = function
  | Root -> 1
  | Pid_dir p -> (p * 1000) + 100
  | Pid_file (p, name) ->
      let idx =
        match List.find_index (String.equal name) pid_files with
        | Some i -> i
        | None -> 50
      in
      (p * 1000) + 101 + idx
  | Ns_dir p -> (p * 1000) + 120
  | Ns_file (p, kind) ->
      let idx =
        match kind with
        | Namespace.Mnt -> 0
        | Namespace.Pid -> 1
        | Namespace.Net -> 2
        | Namespace.Uts -> 3
        | Namespace.Ipc -> 4
        | Namespace.User -> 5
        | Namespace.Cgroup -> 6
      in
      (p * 1000) + 121 + idx
  | Attr_dir p -> (p * 1000) + 140
  | Attr_file p -> (p * 1000) + 141

type t = {
  kernel : Kernel.t;
  pidns : Namespace.pid_ns;
  fs_id : int;
  (* Open handles snapshot the generated content. *)
  handles : (int, string) Hashtbl.t;
  mutable next_fh : int;
  nodes : (int, node) Hashtbl.t; (* ino -> node, filled on lookup *)
}

let create ~kernel ~pidns =
  let t =
    {
      kernel;
      pidns;
      fs_id = Fsops.next_fs_id ();
      handles = Hashtbl.create 8;
      next_fh = 1;
      nodes = Hashtbl.create 64;
    }
  in
  Hashtbl.replace t.nodes 1 Root;
  t

let intern t node =
  let ino = ino_of_node node in
  Hashtbl.replace t.nodes ino node;
  ino

let ( let* ) = Result.bind

let proc_of t pid =
  match Kernel.proc_by_pid t.kernel pid with
  | Ok p when Namespace.pid_ns_visible_from ~outer:t.pidns p.Proc.ns.Proc.pid_ns -> Ok p
  | Ok _ -> Error Errno.ENOENT
  | Error _ -> Error Errno.ENOENT

let visible_pids t =
  Kernel.procs_in_pidns t.kernel t.pidns |> List.map (fun p -> p.Proc.pid)

(* --- content generation ------------------------------------------------ *)

let render_status t (p : Proc.t) =
  let caps = p.Proc.cred.Proc.caps in
  let groups = String.concat " " (List.map string_of_int p.Proc.cred.Proc.groups) in
  ignore t;
  Printf.sprintf
    "Name:\t%s\nPid:\t%d\nPPid:\t%d\nUid:\t%d\t%d\t%d\t%d\nGid:\t%d\t%d\t%d\t%d\nGroups:\t%s\nCapEff:\t%s\nSeccomp:\t0\n"
    p.Proc.comm p.Proc.pid p.Proc.ppid p.Proc.cred.Proc.uid p.Proc.cred.Proc.uid
    p.Proc.cred.Proc.uid p.Proc.cred.Proc.uid p.Proc.cred.Proc.gid
    p.Proc.cred.Proc.gid p.Proc.cred.Proc.gid p.Proc.cred.Proc.gid groups
    (Caps.Set.to_hex caps)

let render_environ (p : Proc.t) =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s=%s\000" k v) p.Proc.env)

let render_cgroup (p : Proc.t) = Printf.sprintf "0::%s\n" p.Proc.cgroup

let render_mounts (p : Proc.t) =
  Kernel.mounts_of_ns p.Proc.ns.Proc.mnt
  |> List.map (fun m ->
         Printf.sprintf "%d %s %s ino%d %s" m.Mount.m_id m.Mount.m_fs.Fsops.fs_name
           (match m.Mount.m_prop with
           | Mount.Private -> "private"
           | Mount.Shared g -> Printf.sprintf "shared:%d" g
           | Mount.Slave g -> Printf.sprintf "slave:%d" g)
           m.Mount.m_root
           (if m.Mount.m_ro then "ro" else "rw"))
  |> String.concat "\n"

let render_limits (p : Proc.t) =
  let fsize =
    match p.Proc.rlimit_fsize with
    | None -> "unlimited"
    | Some n -> string_of_int n
  in
  Printf.sprintf "Limit                     Soft Limit           Hard Limit           Units\nMax file size             %s            %s            bytes\n"
    fsize fsize

let render_map map =
  Namespace.(
    List.map (fun m -> Printf.sprintf "%10d %10d %10d\n" m.inside m.outside m.count) map)
  |> String.concat ""

let render_pid_file t p name =
  let* proc = proc_of t p in
  match name with
  | "status" -> Ok (render_status t proc)
  | "environ" -> Ok (render_environ proc)
  | "cmdline" -> Ok (proc.Proc.comm ^ "\000")
  | "cgroup" -> Ok (render_cgroup proc)
  | "mounts" -> Ok (render_mounts proc)
  | "limits" -> Ok (render_limits proc)
  | "uid_map" -> Ok (render_map proc.Proc.ns.Proc.user.Namespace.uid_map)
  | "gid_map" -> Ok (render_map proc.Proc.ns.Proc.user.Namespace.gid_map)
  | _ -> Error Errno.ENOENT

let ns_id_of (proc : Proc.t) kind =
  match kind with
  | Namespace.Mnt -> proc.Proc.ns.Proc.mnt.Mount.ns_id
  | Namespace.Pid -> proc.Proc.ns.Proc.pid_ns.Namespace.pns_id
  | Namespace.Net -> proc.Proc.ns.Proc.net.Namespace.id
  | Namespace.Uts -> proc.Proc.ns.Proc.uts.Namespace.id
  | Namespace.Ipc -> proc.Proc.ns.Proc.ipc.Namespace.id
  | Namespace.User -> proc.Proc.ns.Proc.user.Namespace.uns_id
  | Namespace.Cgroup -> proc.Proc.ns.Proc.cgroup_ns.Namespace.id

let render_content t node =
  match node with
  | Root | Pid_dir _ | Ns_dir _ | Attr_dir _ -> Ok ""
  | Pid_file (p, name) -> render_pid_file t p name
  | Ns_file (p, kind) ->
      let* proc = proc_of t p in
      Ok (Printf.sprintf "%s:[%d]" (Namespace.kind_to_string kind) (ns_id_of proc kind))
  | Attr_file p ->
      let* proc = proc_of t p in
      Ok (Option.value ~default:"unconfined" proc.Proc.lsm_profile ^ "\n")

let node_of_ino t ino =
  match Hashtbl.find_opt t.nodes ino with
  | Some n -> Ok n
  | None -> Error Errno.ENOENT

let is_dir_node = function
  | Root | Pid_dir _ | Ns_dir _ | Attr_dir _ -> true
  | Pid_file _ | Ns_file _ | Attr_file _ -> false

let kind_of_node = function
  | Root | Pid_dir _ | Ns_dir _ | Attr_dir _ -> Types.Dir
  | Ns_file _ -> Types.Symlink
  | Pid_file _ | Attr_file _ -> Types.Reg

let stat_of t ino node =
  let uid, gid =
    match node with
    | Root -> (0, 0)
    | Pid_dir p | Pid_file (p, _) | Ns_dir p | Ns_file (p, _) | Attr_dir p | Attr_file p -> (
        match proc_of t p with
        | Ok proc -> (proc.Proc.cred.Proc.uid, proc.Proc.cred.Proc.gid)
        | Error _ -> (0, 0))
  in
  let size =
    match render_content t node with Ok s -> String.length s | Error _ -> 0
  in
  {
    Types.st_ino = ino;
    st_kind = kind_of_node node;
    st_mode = (if is_dir_node node then 0o555 else 0o444);
    st_uid = uid;
    st_gid = gid;
    st_nlink = 1;
    st_size = size;
    st_atime = 0L;
    st_mtime = 0L;
    st_ctime = 0L;
  }

let lookup t _cred dir name =
  let* node = node_of_ino t dir in
  let* child =
    match (node, name) with
    | Root, pid_str -> (
        match int_of_string_opt pid_str with
        | Some pid ->
            let* _p = proc_of t pid in
            Ok (Pid_dir pid)
        | None -> Error Errno.ENOENT)
    | Pid_dir p, "ns" -> Ok (Ns_dir p)
    | Pid_dir p, "attr" -> Ok (Attr_dir p)
    | Pid_dir p, f when List.mem f pid_files ->
        let* _p = proc_of t p in
        Ok (Pid_file (p, f))
    | Ns_dir p, k -> (
        match
          List.find_opt (fun kind -> Namespace.kind_to_string kind = k) Namespace.all_kinds
        with
        | Some kind -> Ok (Ns_file (p, kind))
        | None -> Error Errno.ENOENT)
    | Attr_dir p, "current" -> Ok (Attr_file p)
    | _ -> Error Errno.ENOENT
  in
  let ino = intern t child in
  Ok (ino, stat_of t ino child)

let getattr t ino =
  let* node = node_of_ino t ino in
  Ok (stat_of t ino node)

let readdir t _cred ino =
  let* node = node_of_ino t ino in
  let names =
    match node with
    | Root -> List.map string_of_int (visible_pids t)
    | Pid_dir _ -> "ns" :: "attr" :: pid_files
    | Ns_dir _ -> List.map Namespace.kind_to_string Namespace.all_kinds
    | Attr_dir _ -> [ "current" ]
    | _ -> []
  in
  if not (is_dir_node node) then Error Errno.ENOTDIR
  else
    Ok
      (List.map
         (fun name ->
           let child =
             match (node, name) with
             | Root, p -> Pid_dir (int_of_string p)
             | Pid_dir p, "ns" -> Ns_dir p
             | Pid_dir p, "attr" -> Attr_dir p
             | Pid_dir p, f -> Pid_file (p, f)
             | Ns_dir p, k ->
                 Ns_file
                   ( p,
                     List.find (fun kind -> Namespace.kind_to_string kind = k) Namespace.all_kinds )
             | Attr_dir p, _ -> Attr_file p
             | _ -> Root
           in
           { Types.d_ino = intern t child; d_name = name; d_kind = kind_of_node child })
         names)

let open_ t _cred ino _flags =
  let* node = node_of_ino t ino in
  if is_dir_node node then Error Errno.EISDIR
  else
    let* content = render_content t node in
    let fh = t.next_fh in
    t.next_fh <- fh + 1;
    Hashtbl.replace t.handles fh content;
    Ok fh

let read t fh ~off ~len =
  match Hashtbl.find_opt t.handles fh with
  | None -> Error Errno.EBADF
  | Some content ->
      if off >= String.length content then Ok ""
      else Ok (String.sub content off (min len (String.length content - off)))

let readlink t ino =
  let* node = node_of_ino t ino in
  match node with
  | Ns_file _ ->
      (* ns links are magic: their "target" is the namespace tag, not a
         path; readlink exposes the tag text. *)
      render_content t node
  | _ -> Error Errno.EINVAL

let eperm5 _ _ _ _ _ = Error Errno.EPERM

let ops t : Fsops.t = {
  fs_name = "proc";
  fs_id = t.fs_id;
  root = 1;
  lookup = lookup t;
  forget = (fun _ -> ());
  getattr = getattr t;
  setattr = (fun _ _ _ -> Error Errno.EPERM);
  readlink = readlink t;
  mknod = (fun _ _ _ ~kind:_ ~mode:_ -> Error Errno.EPERM);
  mkdir = (fun _ _ _ ~mode:_ -> Error Errno.EPERM);
  unlink = (fun _ _ _ -> Error Errno.EPERM);
  rmdir = (fun _ _ _ -> Error Errno.EPERM);
  symlink = (fun _ _ _ ~target:_ -> Error Errno.EPERM);
  rename = eperm5;
  link = (fun _ ~src:_ ~dir:_ ~name:_ -> Error Errno.EPERM);
  open_ = open_ t;
  create = (fun _ _ _ ~mode:_ _ -> Error Errno.EPERM);
  read = read t;
  write = (fun _ _ ~off:_ _ -> Error Errno.EPERM);
  flush = (fun _ -> Ok ());
  release = (fun fh -> Hashtbl.remove t.handles fh);
  fsync = (fun _ -> Ok ());
  fallocate = (fun _ ~off:_ ~len:_ -> Error Errno.EPERM);
  readdir = readdir t;
  setxattr = (fun _ _ _ _ -> Error Errno.EPERM);
  getxattr = (fun _ _ -> Error Errno.ENODATA);
  listxattr = (fun _ -> Ok []);
  removexattr = (fun _ _ _ -> Error Errno.EPERM);
  statfs =
    (fun () ->
      { Types.f_fsname = "proc"; f_bsize = 4096; f_blocks = 0; f_bfree = 0; f_files = 0 });
  export_handle = (fun _ -> Error Errno.ENOTSUP);
  open_by_handle = (fun _ -> Error Errno.ENOTSUP);
  supports_mmap = (fun _ -> false);
  supports_direct_io = false;
}
