(** Executable file format of the simulated world: a binary is a file whose
    content names a kernel-registered program ("#!BIN name\n" + optional
    ballast); shebang scripts re-exec their interpreter. *)

type t =
  | Bin of string  (** registered program name *)
  | Script of string  (** interpreter path *)

(** Build a binary payload for [prog], padded to roughly [size] bytes. *)
val make : prog:string -> ?size:int -> unit -> string

val bin_prefix : string

val parse : string -> t option
