(* Mount namespaces.  Mounts are keyed Linux-style by (parent mount,
   mountpoint inode), which makes bind mounts, stacked mounts, and chroot
   interact correctly with path walking.  Propagation implements the subset
   CNTR depends on: shared peer groups (the host root), private mounts
   (container namespaces), and recursive privatization — so a mount created
   in CNTR's nested namespace never leaks back into the application
   container (§3.2.3). *)

open Repro_vfs

type propagation = Private | Shared of int | Slave of int

type mount = {
  m_id : int;
  m_ns : int; (* owning namespace id *)
  m_fs : Fsops.t;
  m_root : Types.ino;
  mutable m_parent : int option;
  mutable m_mp : (int * Types.ino) option; (* (parent mount id, mountpoint ino) *)
  mutable m_prop : propagation;
  mutable m_ro : bool;
}

type ns = {
  ns_id : int;
  mounts : (int, mount) Hashtbl.t;
  mutable root : int; (* root mount id *)
}

let next_mount_id =
  let c = ref 0 in
  fun () -> incr c; !c

let next_ns_id =
  let c = ref 0 in
  fun () -> incr c; !c

let next_peer_group =
  let c = ref 0 in
  fun () -> incr c; !c

(* A fresh namespace rooted at [fs]'s root. *)
let create_ns ~fs ?root_ino ?(prop = Private) () =
  let ns_id = next_ns_id () in
  let root_ino = Option.value root_ino ~default:fs.Fsops.root in
  let m =
    {
      m_id = next_mount_id ();
      m_ns = ns_id;
      m_fs = fs;
      m_root = root_ino;
      m_parent = None;
      m_mp = None;
      m_prop = prop;
      m_ro = false;
    }
  in
  let ns = { ns_id; mounts = Hashtbl.create 16; root = m.m_id } in
  Hashtbl.replace ns.mounts m.m_id m;
  ns

let find ns mid = Hashtbl.find_opt ns.mounts mid

let root_mount ns =
  match find ns ns.root with
  | Some m -> m
  | None -> invalid_arg "Mount.root_mount: dangling root"

(* The topmost mount stacked on mountpoint (parent mount [mid], inode
   [ino]), if any. *)
let mount_on ns ~mid ~ino =
  Hashtbl.fold
    (fun _ m best ->
      match m.m_mp with
      | Some (pmid, pino) when pmid = mid && pino = ino -> (
          match best with
          | Some b when b.m_id > m.m_id -> best
          | _ -> Some m)
      | _ -> best)
    ns.mounts None

(* Raw insertion of a mount record (propagation is the kernel's job). *)
let add ns ~parent ~mp_ino ~fs ~root_ino ~prop ~ro =
  let m =
    {
      m_id = next_mount_id ();
      m_ns = ns.ns_id;
      m_fs = fs;
      m_root = root_ino;
      m_parent = Some parent;
      m_mp = Some (parent, mp_ino);
      m_prop = prop;
      m_ro = ro;
    }
  in
  Hashtbl.replace ns.mounts m.m_id m;
  m

let children ns mid =
  Hashtbl.fold
    (fun _ m acc -> if m.m_parent = Some mid then m :: acc else acc)
    ns.mounts []

let remove ns mid = Hashtbl.remove ns.mounts mid

(* Copy every mount into a fresh namespace, preserving structure and
   propagation (clones of shared mounts stay in the same peer group, as in
   Linux). *)
let clone_ns ns =
  let new_ns_id = next_ns_id () in
  let id_map = Hashtbl.create 16 in
  Hashtbl.iter
    (fun old_id _ -> Hashtbl.replace id_map old_id (next_mount_id ()))
    ns.mounts;
  let remap id = Hashtbl.find id_map id in
  let mounts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun old_id m ->
      let m' =
        {
          m with
          m_id = remap old_id;
          m_ns = new_ns_id;
          m_parent = Option.map remap m.m_parent;
          m_mp = Option.map (fun (p, i) -> (remap p, i)) m.m_mp;
        }
      in
      Hashtbl.replace mounts m'.m_id m')
    ns.mounts;
  { ns_id = new_ns_id; mounts; root = remap ns.root }

(* mount --make-rprivate /: detach every mount from its peer group. *)
let make_rprivate ns =
  Hashtbl.iter (fun _ m -> m.m_prop <- Private) ns.mounts

let make_shared m =
  match m.m_prop with
  | Shared _ -> ()
  | Private | Slave _ -> m.m_prop <- Shared (next_peer_group ())

let mount_count ns = Hashtbl.length ns.mounts
