(* The single source of truth for what moving bytes costs.  lib/proxy's
   pumps, Kernel.splice and the FUSE transport all price their transfers
   here; the constants live in Cost so experiments can still sweep them. *)

open Repro_util

(* 64 KiB: the default pipe capacity, hence the natural splice unit. *)
let chunk = 64 * 1024
let default_buffer = chunk
let clamp ~room len = max 0 (min len room)
let setup_ns cost = cost.Cost.splice_setup_ns
let page_ns cost bytes = cost.Cost.splice_page_ns * Cost.pages_of_bytes cost bytes
let splice_ns cost bytes = Cost.splice_cost cost bytes
let copy_ns cost bytes = Cost.copy_cost cost bytes
let splice_write_switch_ns cost = cost.Cost.context_switch_ns
