(** Linux capabilities (the subset the simulation enforces).  CNTR captures
    a container's capability set from /proc and applies it to the nested
    namespace so tools run with exactly the container's privileges. *)

type cap =
  | CAP_CHOWN
  | CAP_DAC_OVERRIDE
  | CAP_FOWNER
  | CAP_FSETID
  | CAP_KILL
  | CAP_SETGID
  | CAP_SETUID
  | CAP_NET_ADMIN
  | CAP_NET_BIND_SERVICE
  | CAP_SYS_CHROOT
  | CAP_SYS_PTRACE
  | CAP_SYS_ADMIN
  | CAP_MKNOD
  | CAP_SYS_RESOURCE
  | CAP_AUDIT_WRITE

val all_caps : cap list
val to_string : cap -> string
val of_string : string -> cap option

(** Kernel bit position (as in /proc's CapEff). *)
val bit : cap -> int

module Set : sig
  type t

  val empty : t
  val full : t
  val mem : cap -> t -> bool
  val add : cap -> t -> t
  val remove : cap -> t -> t
  val of_list : cap list -> t
  val to_list : t -> cap list

  (** CapEff-style 16-digit hex, as /proc prints it. *)
  val to_hex : t -> string

  val of_hex : string -> t
  val equal : t -> t -> bool

  (** Docker's default bounding set for unprivileged containers. *)
  val docker_default : t
end
