(* In-kernel pipes: a bounded byte queue with reader/writer reference
   counting.  Used for pipe(2), pseudo-TTY plumbing, and as the kernel
   buffer for splice(2).

   Wakers model the kernel's poll waitqueue: every registered callback
   fires on any state transition (bytes queued, bytes drained, an end
   closed), so an epoll instance watching the pipe can re-evaluate
   readiness without polling. *)

open Repro_util

type t = {
  capacity : int;
  buf : Buffer.t;
  mutable read_pos : int;
  mutable readers : int;
  mutable writers : int;
  mutable wakers : (unit -> unit) list;
}

let default_capacity = 64 * 1024

let create ?(capacity = default_capacity) () =
  { capacity; buf = Buffer.create 256; read_pos = 0; readers = 1; writers = 1; wakers = [] }

let available t = Buffer.length t.buf - t.read_pos
let room t = t.capacity - available t

let add_waker t f = t.wakers <- f :: t.wakers

(* Fire in registration order so two runs wake watchers identically. *)
let wake t = List.iter (fun f -> f ()) (List.rev t.wakers)

let compact t =
  if t.read_pos > 0 && t.read_pos = Buffer.length t.buf then begin
    Buffer.clear t.buf;
    t.read_pos <- 0
  end
  else if t.read_pos > t.capacity then begin
    (* Slide the window down to bound memory. *)
    let rest = Buffer.sub t.buf t.read_pos (available t) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.read_pos <- 0
  end

(* Write as much of [data] as fits; EPIPE once all readers are gone, EAGAIN
   when full. *)
let write t data =
  if t.readers = 0 then Error Errno.EPIPE
  else
    let n = min (String.length data) (room t) in
    if n = 0 && String.length data > 0 then Error Errno.EAGAIN
    else begin
      Buffer.add_substring t.buf data 0 n;
      if n > 0 then wake t;
      Ok n
    end

(* Read up to [len] bytes; "" at EOF (writers gone), EAGAIN when empty but
   writers remain. *)
let read t ~len =
  let avail = available t in
  if avail = 0 then
    if t.writers = 0 then Ok "" else Error Errno.EAGAIN
  else begin
    let n = min len avail in
    let s = Buffer.sub t.buf t.read_pos n in
    t.read_pos <- t.read_pos + n;
    compact t;
    if n > 0 then wake t;
    Ok s
  end

let close_reader t =
  t.readers <- max 0 (t.readers - 1);
  if t.readers = 0 then wake t

let close_writer t =
  t.writers <- max 0 (t.writers - 1);
  if t.writers = 0 then wake t

let add_reader t = t.readers <- t.readers + 1
let add_writer t = t.writers <- t.writers + 1
let has_readers t = t.readers > 0

let readable t = available t > 0 || t.writers = 0
let writable t = room t > 0 && t.readers > 0
