(* In-kernel pipes: a bounded byte queue with reader/writer reference
   counting.  Used for pipe(2), pseudo-TTY plumbing, and as the kernel
   buffer for splice(2). *)

open Repro_util

type t = {
  capacity : int;
  buf : Buffer.t;
  mutable read_pos : int;
  mutable readers : int;
  mutable writers : int;
}

let default_capacity = 64 * 1024

let create ?(capacity = default_capacity) () =
  { capacity; buf = Buffer.create 256; read_pos = 0; readers = 1; writers = 1 }

let available t = Buffer.length t.buf - t.read_pos
let room t = t.capacity - available t

let compact t =
  if t.read_pos > 0 && t.read_pos = Buffer.length t.buf then begin
    Buffer.clear t.buf;
    t.read_pos <- 0
  end
  else if t.read_pos > t.capacity then begin
    (* Slide the window down to bound memory. *)
    let rest = Buffer.sub t.buf t.read_pos (available t) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.read_pos <- 0
  end

(* Write as much of [data] as fits; EPIPE once all readers are gone, EAGAIN
   when full. *)
let write t data =
  if t.readers = 0 then Error Errno.EPIPE
  else
    let n = min (String.length data) (room t) in
    if n = 0 && String.length data > 0 then Error Errno.EAGAIN
    else begin
      Buffer.add_substring t.buf data 0 n;
      Ok n
    end

(* Read up to [len] bytes; "" at EOF (writers gone), EAGAIN when empty but
   writers remain. *)
let read t ~len =
  let avail = available t in
  if avail = 0 then
    if t.writers = 0 then Ok "" else Error Errno.EAGAIN
  else begin
    let n = min len avail in
    let s = Buffer.sub t.buf t.read_pos n in
    t.read_pos <- t.read_pos + n;
    compact t;
    Ok s
  end

let close_reader t = t.readers <- max 0 (t.readers - 1)
let close_writer t = t.writers <- max 0 (t.writers - 1)
let add_reader t = t.readers <- t.readers + 1
let add_writer t = t.writers <- t.writers + 1

let readable t = available t > 0 || t.writers = 0
let writable t = room t > 0 && t.readers > 0
