(** The simulated kernel: process table, namespaces, the mount forest, path
    walking and the syscall surface everything else programs against.

    Every syscall takes the kernel and the calling process; permissions,
    namespaces, chroot and rlimits are those of the caller.  All costs are
    charged to the world's virtual clock through {!Repro_util.Cost}. *)

open Repro_util
open Repro_vfs

(** A registered program: the implementation behind an executable file (see
    {!Binfmt}).  Receives the kernel, the calling process and argv; returns
    the exit code.  Runs synchronously. *)
type program = t -> Proc.t -> string list -> int

(** A character device implementation.  When [dev_open] is set, opening the
    device node produces a custom fd (e.g. /dev/fuse creates a connection)
    instead of a plain file. *)
and chardev = {
  dev_name : string;
  dev_read : len:int -> string;
  dev_write : string -> int;
  dev_open : (t -> Proc.t -> Proc.fd_entry) option;
}

and cgroup = { mutable cg_procs : int list }

and t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
      (** the kernel's observability handle — shared with the FUSE/CntrFS
          layers so [os.*], [fuse.*] and [vfs.*] counters land together *)
  k_syscalls : Repro_obs.Metrics.counter;  (** hot handle for [os.syscall.count] *)
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  namespaces : (int, Mount.ns) Hashtbl.t;  (** every mount namespace, for propagation *)
  sock_bindings : (int * int, Sock.listener) Hashtbl.t;
      (** Unix-socket bindings keyed by (fs_id, ino) — which is why sockets
          seen through a FUSE mount don't connect (§3.2.4) *)
  programs : (string, program) Hashtbl.t;
  chardevs : (int * int, chardev) Hashtbl.t;
  cgroups : (string, cgroup) Hashtbl.t;
  hostnames : (int, string) Hashtbl.t;  (** per UTS namespace *)
  mutable next_tag : int;
  mutable init_pid : int;
  mutable k_fault : (op:string -> Proc.t -> Errno.t option) option;
      (** fault-injection hook for file/metadata syscalls (see {!set_fault}) *)
}

(** Boot a kernel whose init process (pid 1) runs as root on [root_fs];
    the root mount starts shared, as systemd configures it.  Syscalls,
    fork/exec and namespace transitions are counted on [obs] (a private
    handle when omitted) under [os.syscall.count], [os.proc.forks],
    [os.proc.execs], [os.ns.unshare] and [os.ns.setns]. *)
val create : ?obs:Repro_obs.Obs.t -> clock:Clock.t -> cost:Cost.t -> root_fs:Fsops.t -> unit -> t

val init_proc : t -> Proc.t
val proc_by_pid : t -> int -> (Proc.t, Errno.t) result
val all_procs : t -> Proc.t list

(** Processes visible from a PID namespace (itself and its descendants). *)
val procs_in_pidns : t -> Namespace.pid_ns -> Proc.t list

(** Register a cloned/new mount namespace so propagation can reach it. *)
val register_mnt_ns : t -> Mount.ns -> unit

(** Install (or clear) the fault-injection hook.  It is consulted on entry
    to the file/metadata syscalls ("open", "read", "write", "pread",
    "pwrite", "stat", "lstat", "mkdir", "unlink", "rmdir", "rename",
    "readdir", "fsync") with the calling process; returning an errno fails
    the call before it reaches the filesystem.  The fault plane installs a
    closure here filtered to the CntrFS server's processes, so transient
    backing-store errors (EINTR/ENOMEM/EIO/ENOSPC) hit the server exactly
    as if the host fs had returned them.  No hook costs one branch. *)
val set_fault : t -> (op:string -> Proc.t -> Errno.t option) option -> unit

(** {1 Files} *)

val open_ :
  t -> Proc.t -> string -> Types.open_flag list -> mode:int -> (int, Errno.t) result

val close : t -> Proc.t -> int -> (unit, Errno.t) result
val dup : t -> Proc.t -> int -> (int, Errno.t) result
val read : t -> Proc.t -> int -> len:int -> (string, Errno.t) result
val write : t -> Proc.t -> int -> string -> (int, Errno.t) result
val pread : t -> Proc.t -> int -> off:int -> len:int -> (string, Errno.t) result
val pwrite : t -> Proc.t -> int -> off:int -> string -> (int, Errno.t) result

type seek_cmd = SEEK_SET of int | SEEK_CUR of int | SEEK_END of int

val lseek : t -> Proc.t -> int -> seek_cmd -> (int, Errno.t) result
val fsync : t -> Proc.t -> int -> (unit, Errno.t) result
val fallocate : t -> Proc.t -> int -> off:int -> len:int -> (unit, Errno.t) result
val ftruncate : t -> Proc.t -> int -> int -> (unit, Errno.t) result

(** Read a whole file through the filesystem (charging its costs). *)
val read_whole : t -> Proc.t -> string -> (string, Errno.t) result

(** Decrement an open file description's refcount, releasing at zero. *)
val release_file : Proc.open_file -> unit

(** {1 Metadata} *)

val stat : t -> Proc.t -> string -> (Types.stat, Errno.t) result
val lstat : t -> Proc.t -> string -> (Types.stat, Errno.t) result
val fstat : t -> Proc.t -> int -> (Types.stat, Errno.t) result

(** access(2) with {!Types.r_ok}/[w_ok]/[x_ok] bits; evaluates ACLs. *)
val access : t -> Proc.t -> string -> int -> (unit, Errno.t) result

val mkdir : t -> Proc.t -> string -> mode:int -> (unit, Errno.t) result
val mknod : t -> Proc.t -> string -> kind:Types.kind -> mode:int -> (unit, Errno.t) result
val unlink : t -> Proc.t -> string -> (unit, Errno.t) result
val rmdir : t -> Proc.t -> string -> (unit, Errno.t) result
val symlink : t -> Proc.t -> target:string -> linkpath:string -> (unit, Errno.t) result
val readlink : t -> Proc.t -> string -> (string, Errno.t) result
val rename : t -> Proc.t -> src:string -> dst:string -> (unit, Errno.t) result
val link : t -> Proc.t -> target:string -> linkpath:string -> (unit, Errno.t) result

(** linkat(fd, "", dst, AT_EMPTY_PATH): hardlink an open inode. *)
val link_fd : t -> Proc.t -> int -> linkpath:string -> (unit, Errno.t) result

val setattr_path : t -> Proc.t -> string -> Types.setattr -> (unit, Errno.t) result
val chmod : t -> Proc.t -> string -> int -> (unit, Errno.t) result
val chown : t -> Proc.t -> string -> uid:int option -> gid:int option -> (unit, Errno.t) result
val truncate : t -> Proc.t -> string -> int -> (unit, Errno.t) result

val utimens :
  t -> Proc.t -> string -> atime:int64 option -> mtime:int64 option -> (unit, Errno.t) result

val readdir : t -> Proc.t -> string -> (Types.dirent list, Errno.t) result
val statfs : t -> Proc.t -> string -> (Types.statfs, Errno.t) result

(** {1 Extended attributes} *)

val setxattr : t -> Proc.t -> string -> string -> string -> (unit, Errno.t) result
val getxattr : t -> Proc.t -> string -> string -> (string, Errno.t) result
val listxattr : t -> Proc.t -> string -> (string list, Errno.t) result
val removexattr : t -> Proc.t -> string -> string -> (unit, Errno.t) result

(** fd-based variants (used by the CntrFS server when a looked-up path has
    gone stale but the inode survives through a handle). *)

val freadlink : t -> Proc.t -> int -> (string, Errno.t) result
val fsetattr : t -> Proc.t -> int -> Types.setattr -> (Types.stat, Errno.t) result
val fgetxattr : t -> Proc.t -> int -> string -> (string, Errno.t) result
val fsetxattr : t -> Proc.t -> int -> string -> string -> (unit, Errno.t) result
val flistxattr : t -> Proc.t -> int -> (string list, Errno.t) result
val fremovexattr : t -> Proc.t -> int -> string -> (unit, Errno.t) result

(** {1 File handles (open_by_handle_at)} *)

(** Export a persistent handle for a path ([follow] defaults true).
    Filesystems with ephemeral inodes (CntrFS) return [ENOTSUP]. *)
val name_to_handle_at :
  t -> Proc.t -> ?follow:bool -> string -> (int * string, Errno.t) result

(** Reopen a handle ([flags] default read-only). *)
val open_by_handle_at :
  t -> Proc.t -> ?flags:Types.open_flag list -> int * string -> (int, Errno.t) result

(** {1 Processes} *)

val chdir : t -> Proc.t -> string -> (unit, Errno.t) result

(** chroot(2); requires CAP_SYS_CHROOT.  ".." cannot escape the new root. *)
val chroot : t -> Proc.t -> string -> (unit, Errno.t) result

(** fork(2): fds become shared open file descriptions, Linux-style. *)
val fork : t -> Proc.t -> Proc.t

(** Close all fds and mark the process dead. *)
val exit : t -> Proc.t -> int -> unit

(** unshare(2) for the given namespace kinds; requires CAP_SYS_ADMIN.
    Unsharing [Mnt] clones the mount table (propagation groups preserved). *)
val unshare : t -> Proc.t -> Namespace.kind list -> (unit, Errno.t) result

(** setns(2): join [target_pid]'s namespaces — the primitive CNTR attaches
    with (§3.2.2, §3.2.3).  Requires CAP_SYS_ADMIN. *)
val setns : t -> Proc.t -> target_pid:int -> Namespace.kind list -> (unit, Errno.t) result

(** {1 Mounts} *)

(** Mount [fs] (optionally a sub-root of it) over the directory [target];
    propagates to shared peers. *)
val mount_at :
  t -> Proc.t -> fs:Fsops.t -> ?root_ino:Types.ino -> string -> (Mount.mount, Errno.t) result

(** Bind mount: graft the subtree (or single file) at [src] onto [dst]. *)
val bind_mount : t -> Proc.t -> src:string -> dst:string -> (Mount.mount, Errno.t) result

val umount : t -> Proc.t -> string -> (unit, Errno.t) result

(** mount --make-rprivate /: detach every mount of the caller's namespace
    from its peer group, so new mounts stop propagating (§3.2.3). *)
val make_rprivate : t -> Proc.t -> (unit, Errno.t) result

val mounts_of_ns : Mount.ns -> Mount.mount list

(** {1 Identity, cgroups, limits} *)

val gethostname : t -> Proc.t -> string
val sethostname : t -> Proc.t -> string -> (unit, Errno.t) result
val cgroup_create : t -> string -> unit
val cgroup_attach : t -> Proc.t -> cgroup:string -> unit
val cgroup_procs : t -> string -> int list
val set_rlimit_fsize : t -> Proc.t -> int option -> unit
val apply_lsm_profile : t -> Proc.t -> string option -> unit

(** {1 IPC: pipes, sockets, epoll} *)

val pipe : t -> Proc.t -> int * int

(** splice(2): move bytes between fds without a userspace copy.  Charges
    the per-call setup plus a per-page remap ({!Repro_util.Cost.splice_cost});
    the pull is clamped to the destination's free room so a partial sink
    never strands bytes ([EAGAIN] before anything is consumed when the
    destination is full). *)
val splice : t -> Proc.t -> fd_in:int -> fd_out:int -> len:int -> (int, Errno.t) result

(** shutdown(fd, SHUT_WR): half-close the send direction — the peer drains
    what is queued, then reads EOF.  [ENOTSOCK] on non-sockets. *)
val shutdown_write : t -> Proc.t -> int -> (unit, Errno.t) result

(** Abortive close (SO_LINGER 0): the fd goes away, both connection ends
    observe [ECONNRESET], queued bytes are discarded. *)
val socket_abort : t -> Proc.t -> int -> (unit, Errno.t) result

(** SCM_RIGHTS-style fd passing: move an open description from [src]'s fd
    table to [dst]'s; returns the new fd number. *)
val pass_fd : t -> src:Proc.t -> dst:Proc.t -> int -> (int, Errno.t) result

(** Bind + listen on a Unix socket at [path] (creates the socket file).
    [backlog] bounds connections awaiting accept; beyond it connects are
    refused. *)
val socket_listen : ?backlog:int -> t -> Proc.t -> string -> (int, Errno.t) result

(** Connect to the socket file at [path].  The binding is keyed by the
    *presenting* filesystem's identity, so connecting through a FUSE view
    of the socket fails with [ECONNREFUSED]. *)
val socket_connect : t -> Proc.t -> string -> (int, Errno.t) result

val socket_accept : t -> Proc.t -> int -> (int, Errno.t) result
val epoll_create : t -> Proc.t -> int
val epoll_add : t -> Proc.t -> epfd:int -> fd:int -> interest:Epoll.interest -> (unit, Errno.t) result

(** EPOLL_CTL_MOD re-arm: reset the fd's edge state so the next
    {!epoll_wait_edge} reports current readiness as a fresh transition.
    Consumers re-arm after draining to [EAGAIN], before parking. *)
val epoll_rearm : t -> Proc.t -> epfd:int -> fd:int -> (unit, Errno.t) result

val epoll_del : t -> Proc.t -> epfd:int -> fd:int -> (unit, Errno.t) result
val epoll_wait : t -> Proc.t -> int -> (Epoll.event list, Errno.t) result

(** Edge-triggered wait: only readiness transitions since the previous
    [epoll_wait_edge] on this instance (see {!Repro_os.Epoll.wait_edge}). *)
val epoll_wait_edge : t -> Proc.t -> int -> (Epoll.event list, Errno.t) result

(** Simulation hook (not a syscall): the callback fired when a watched
    fd's waitqueue wakes this epoll — how a reactor parked on its
    scheduler learns that readiness may have changed.  {!epoll_add} wires
    watched pipes/sockets/listeners to it. *)
val epoll_set_notify :
  t -> Proc.t -> epfd:int -> (unit -> unit) option -> (unit, Errno.t) result

(** {1 Programs and devices} *)

val register_program : t -> string -> program -> unit
val program_exists : t -> string -> bool

(** execve: check the x bit, load the binary through the filesystem (mmap —
    which FUSE direct-I/O files cannot provide), decode the {!Binfmt}
    header and run the registered program.  Shebang scripts re-exec their
    interpreter. *)
val exec : t -> Proc.t -> string -> string list -> (int, Errno.t) result

val register_chardev : t -> major:int -> minor:int -> chardev -> unit
