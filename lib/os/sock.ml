(* Unix-domain stream sockets.  A listener holds a backlog of pending
   connections; an established connection is a pair of endpoints, each
   owning the byte queue it reads from.  Address binding (socket files in a
   filesystem) is managed by the kernel — connections through a CntrFS
   mount fail to resolve the binding because the FUSE inode differs from
   the underlying one, which is exactly why CNTR needs its socket proxy
   (§3.2.4 of the paper).

   Half-close ([shutdown_write]) and abortive close ([abort], the
   SO_LINGER-0 RST path) exist for the forwarding plane: EOF must
   propagate per direction independently, and an injected connection
   crash must surface as a bounded ECONNRESET, never a hang. *)

open Repro_util

type endpoint = {
  ep_id : int;
  recv_q : Pipe.t; (* bytes we read *)
  peer_q : Pipe.t; (* bytes the peer reads (we write here) *)
  mutable ep_open : bool;
  mutable ep_wr_closed : bool; (* shutdown(SHUT_WR) performed *)
  mutable ep_reset : bool; (* connection aborted: reads/writes ECONNRESET *)
  mutable ep_peer : endpoint option;
}

type listener = {
  l_id : int;
  l_path : string; (* for diagnostics *)
  backlog : endpoint Queue.t; (* server-side endpoints awaiting accept *)
  l_backlog_max : int;
  mutable l_open : bool;
  mutable l_wakers : (unit -> unit) list;
}

let next_id =
  let c = ref 0 in
  fun () -> incr c; !c

let default_backlog = 128

let listen ?(backlog = default_backlog) ~path () =
  {
    l_id = next_id ();
    l_path = path;
    backlog = Queue.create ();
    l_backlog_max = max 1 backlog;
    l_open = true;
    l_wakers = [];
  }

let add_listener_waker l f = l.l_wakers <- f :: l.l_wakers
let wake_listener l = List.iter (fun f -> f ()) (List.rev l.l_wakers)

(* Create a connected endpoint pair (client, server). *)
let pair () =
  let a_to_b = Pipe.create () and b_to_a = Pipe.create () in
  let a =
    { ep_id = next_id (); recv_q = b_to_a; peer_q = a_to_b; ep_open = true;
      ep_wr_closed = false; ep_reset = false; ep_peer = None }
  in
  let b =
    { ep_id = next_id (); recv_q = a_to_b; peer_q = b_to_a; ep_open = true;
      ep_wr_closed = false; ep_reset = false; ep_peer = None }
  in
  a.ep_peer <- Some b;
  b.ep_peer <- Some a;
  (a, b)

(* Client connects: enqueue the server endpoint on the listener's backlog
   and hand the client endpoint back.  A full backlog refuses the
   connection, as Linux does once the SYN queue overflows. *)
let connect listener =
  if not listener.l_open then Error Errno.ECONNREFUSED
  else if Queue.length listener.backlog >= listener.l_backlog_max then
    Error Errno.ECONNREFUSED
  else begin
    let client, server = pair () in
    Queue.push server listener.backlog;
    wake_listener listener;
    Ok client
  end

let accept listener =
  if not listener.l_open then Error Errno.EINVAL
  else if Queue.is_empty listener.backlog then Error Errno.EAGAIN
  else Ok (Queue.pop listener.backlog)

let send ep data =
  if ep.ep_reset then Error Errno.ECONNRESET
  else if (not ep.ep_open) || ep.ep_wr_closed then Error Errno.EPIPE
  else Pipe.write ep.peer_q data

let recv ep ~len =
  if ep.ep_reset then Error Errno.ECONNRESET
  else if not ep.ep_open then Error Errno.EBADF
  else Pipe.read ep.recv_q ~len

(* shutdown(SHUT_WR): the peer drains what is queued, then reads EOF.  Our
   read side stays usable. *)
let shutdown_write ep =
  if ep.ep_open && not ep.ep_wr_closed then begin
    ep.ep_wr_closed <- true;
    Pipe.close_writer ep.peer_q
  end

let close_endpoint ep =
  if ep.ep_open then begin
    ep.ep_open <- false;
    (* Peer sees EOF on its queue and EPIPE on writes. *)
    if not ep.ep_wr_closed then begin
      ep.ep_wr_closed <- true;
      Pipe.close_writer ep.peer_q
    end;
    Pipe.close_reader ep.recv_q
  end

(* Abortive close (RST): both ends observe ECONNRESET immediately; queued
   bytes are discarded.  The pipe closes double as waker broadcasts, so
   watching epolls re-evaluate readiness. *)
let abort ep =
  let reset e =
    if not e.ep_reset then begin
      e.ep_reset <- true;
      if e.ep_open then begin
        e.ep_open <- false;
        if not e.ep_wr_closed then begin
          e.ep_wr_closed <- true;
          Pipe.close_writer e.peer_q
        end;
        Pipe.close_reader e.recv_q
      end
    end
  in
  (match ep.ep_peer with Some p -> reset p | None -> ());
  reset ep

let close_listener l =
  if l.l_open then begin
    l.l_open <- false;
    wake_listener l
  end

(* Writable room toward the peer, or why not — splice uses this to clamp
   what it pulls from the source so partial sinks never lose bytes. *)
let send_capacity ep =
  if ep.ep_reset then Error Errno.ECONNRESET
  else if (not ep.ep_open) || ep.ep_wr_closed || not (Pipe.has_readers ep.peer_q) then
    Error Errno.EPIPE
  else Ok (Pipe.room ep.peer_q)

let readable ep = ep.ep_reset || Pipe.readable ep.recv_q
let available ep = Pipe.available ep.recv_q
let writable ep = ep.ep_open && (not ep.ep_wr_closed) && (not ep.ep_reset) && Pipe.writable ep.peer_q
let pending listener = Queue.length listener.backlog

(* Waitqueue hook: state changes in either direction's pipe may flip this
   endpoint's readiness. *)
let add_waker ep f =
  Pipe.add_waker ep.recv_q f;
  Pipe.add_waker ep.peer_q f
