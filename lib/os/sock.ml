(* Unix-domain stream sockets.  A listener holds a backlog of pending
   connections; an established connection is a pair of endpoints, each
   owning the byte queue it reads from.  Address binding (socket files in a
   filesystem) is managed by the kernel — connections through a CntrFS
   mount fail to resolve the binding because the FUSE inode differs from
   the underlying one, which is exactly why CNTR needs its socket proxy
   (§3.2.4 of the paper). *)

open Repro_util

type endpoint = {
  ep_id : int;
  recv_q : Pipe.t; (* bytes we read *)
  peer_q : Pipe.t; (* bytes the peer reads (we write here) *)
  mutable ep_open : bool;
}

type listener = {
  l_id : int;
  l_path : string; (* for diagnostics *)
  backlog : endpoint Queue.t; (* server-side endpoints awaiting accept *)
  mutable l_open : bool;
}

let next_id =
  let c = ref 0 in
  fun () -> incr c; !c

let listen ~path = { l_id = next_id (); l_path = path; backlog = Queue.create (); l_open = true }

(* Create a connected endpoint pair (client, server). *)
let pair () =
  let a_to_b = Pipe.create () and b_to_a = Pipe.create () in
  let a = { ep_id = next_id (); recv_q = b_to_a; peer_q = a_to_b; ep_open = true } in
  let b = { ep_id = next_id (); recv_q = a_to_b; peer_q = b_to_a; ep_open = true } in
  (a, b)

(* Client connects: enqueue the server endpoint on the listener's backlog
   and hand the client endpoint back. *)
let connect listener =
  if not listener.l_open then Error Errno.ECONNREFUSED
  else begin
    let client, server = pair () in
    Queue.push server listener.backlog;
    Ok client
  end

let accept listener =
  if not listener.l_open then Error Errno.EINVAL
  else if Queue.is_empty listener.backlog then Error Errno.EAGAIN
  else Ok (Queue.pop listener.backlog)

let send ep data =
  if not ep.ep_open then Error Errno.EPIPE else Pipe.write ep.peer_q data

let recv ep ~len =
  if not ep.ep_open then Error Errno.EBADF else Pipe.read ep.recv_q ~len

let close_endpoint ep =
  if ep.ep_open then begin
    ep.ep_open <- false;
    (* Peer sees EOF on its queue and EPIPE on writes. *)
    Pipe.close_writer ep.peer_q;
    Pipe.close_reader ep.recv_q
  end

let close_listener l = l.l_open <- false

let readable ep = Pipe.readable ep.recv_q
let writable ep = ep.ep_open && Pipe.writable ep.peer_q
let pending listener = Queue.length listener.backlog
