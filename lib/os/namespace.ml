(* Namespace identities.  Mount namespaces carry real state and live in
   [Mount]; PID namespaces are hierarchical (a parent namespace sees its
   descendants' processes); the others are opaque identity tags whose
   sharing/unsharing is what matters to the simulation. *)

type kind = Mnt | Pid | Net | Uts | Ipc | User | Cgroup

let kind_to_string = function
  | Mnt -> "mnt"
  | Pid -> "pid"
  | Net -> "net"
  | Uts -> "uts"
  | Ipc -> "ipc"
  | User -> "user"
  | Cgroup -> "cgroup"

let all_kinds = [ Mnt; Pid; Net; Uts; Ipc; User; Cgroup ]

(* An opaque namespace tag (net, uts, ipc, cgroup). *)
type t = { id : int; kind : kind }

type pid_ns = { pns_id : int; parent : pid_ns option }

(* Is [inner] equal to or a descendant of [outer]?  Processes in [inner]
   are visible from [outer]'s /proc. *)
let rec pid_ns_visible_from ~outer inner =
  inner.pns_id = outer.pns_id
  ||
  match inner.parent with
  | Some p -> pid_ns_visible_from ~outer p
  | None -> false

(* uid/gid mapping of a user namespace: (inside, outside, count) ranges. *)
type mapping = { inside : int; outside : int; count : int }

type user_ns = {
  uns_id : int;
  mutable uid_map : mapping list;
  mutable gid_map : mapping list;
}

(* Translate an in-namespace id to a host id through a map. *)
let map_to_host map id =
  List.find_map
    (fun m ->
      if id >= m.inside && id < m.inside + m.count then
        Some (m.outside + (id - m.inside))
      else None)
    map

let map_to_ns map host_id =
  List.find_map
    (fun m ->
      if host_id >= m.outside && host_id < m.outside + m.count then
        Some (m.inside + (host_id - m.outside))
      else None)
    map

let identity_map = [ { inside = 0; outside = 0; count = 1 lsl 32 } ]
