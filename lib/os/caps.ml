(* Linux capabilities (the subset the simulation enforces).  CNTR captures a
   container's capability set from /proc and applies it to the nested
   namespace so tools run with exactly the container's privileges. *)

type cap =
  | CAP_CHOWN
  | CAP_DAC_OVERRIDE
  | CAP_FOWNER
  | CAP_FSETID
  | CAP_KILL
  | CAP_SETGID
  | CAP_SETUID
  | CAP_NET_ADMIN
  | CAP_NET_BIND_SERVICE
  | CAP_SYS_CHROOT
  | CAP_SYS_PTRACE
  | CAP_SYS_ADMIN
  | CAP_MKNOD
  | CAP_SYS_RESOURCE
  | CAP_AUDIT_WRITE

let all_caps = [
  CAP_CHOWN; CAP_DAC_OVERRIDE; CAP_FOWNER; CAP_FSETID; CAP_KILL; CAP_SETGID;
  CAP_SETUID; CAP_NET_ADMIN; CAP_NET_BIND_SERVICE; CAP_SYS_CHROOT;
  CAP_SYS_PTRACE; CAP_SYS_ADMIN; CAP_MKNOD; CAP_SYS_RESOURCE; CAP_AUDIT_WRITE;
]

let to_string = function
  | CAP_CHOWN -> "cap_chown"
  | CAP_DAC_OVERRIDE -> "cap_dac_override"
  | CAP_FOWNER -> "cap_fowner"
  | CAP_FSETID -> "cap_fsetid"
  | CAP_KILL -> "cap_kill"
  | CAP_SETGID -> "cap_setgid"
  | CAP_SETUID -> "cap_setuid"
  | CAP_NET_ADMIN -> "cap_net_admin"
  | CAP_NET_BIND_SERVICE -> "cap_net_bind_service"
  | CAP_SYS_CHROOT -> "cap_sys_chroot"
  | CAP_SYS_PTRACE -> "cap_sys_ptrace"
  | CAP_SYS_ADMIN -> "cap_sys_admin"
  | CAP_MKNOD -> "cap_mknod"
  | CAP_SYS_RESOURCE -> "cap_sys_resource"
  | CAP_AUDIT_WRITE -> "cap_audit_write"

let of_string s = List.find_opt (fun c -> to_string c = s) all_caps

let bit = function
  | CAP_CHOWN -> 0
  | CAP_DAC_OVERRIDE -> 1
  | CAP_FOWNER -> 3
  | CAP_FSETID -> 4
  | CAP_KILL -> 5
  | CAP_SETGID -> 6
  | CAP_SETUID -> 7
  | CAP_NET_BIND_SERVICE -> 10
  | CAP_NET_ADMIN -> 12
  | CAP_SYS_CHROOT -> 18
  | CAP_SYS_PTRACE -> 19
  | CAP_SYS_ADMIN -> 21
  | CAP_MKNOD -> 27
  | CAP_SYS_RESOURCE -> 24
  | CAP_AUDIT_WRITE -> 29

module Set = struct
  type t = int (* bitmask *)

  let empty = 0
  let full = List.fold_left (fun acc c -> acc lor (1 lsl bit c)) 0 all_caps
  let mem c t = t land (1 lsl bit c) <> 0
  let add c t = t lor (1 lsl bit c)
  let remove c t = t land lnot (1 lsl bit c)
  let of_list = List.fold_left (fun acc c -> add c acc) empty
  let to_list t = List.filter (fun c -> mem c t) all_caps
  let to_hex t = Printf.sprintf "%016x" t
  let of_hex s = int_of_string ("0x" ^ s)
  let equal (a : t) b = a = b

  (* Docker's default capability bounding set for unprivileged containers. *)
  let docker_default =
    of_list
      [
        CAP_CHOWN; CAP_DAC_OVERRIDE; CAP_FOWNER; CAP_FSETID; CAP_KILL;
        CAP_SETGID; CAP_SETUID; CAP_NET_BIND_SERVICE; CAP_SYS_CHROOT;
        CAP_MKNOD; CAP_AUDIT_WRITE;
      ]
end
