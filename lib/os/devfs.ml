(* /dev: a small RAM filesystem populated with the usual character devices,
   plus kernel-side device implementations for null/zero/urandom/tty.
   /dev/fuse's open behavior is installed separately by the FUSE layer. *)

open Repro_util
open Repro_vfs

let fuse_major = 10
let fuse_minor = 229

(* Create a devtmpfs instance and register the standard device behaviors
   with the kernel. *)
let create ~kernel =
  let clock = kernel.Kernel.clock and cost = kernel.Kernel.cost in
  let fs = Nativefs.create ~name:"devtmpfs" ~clock ~cost Store.Ram () in
  let ops = Nativefs.ops fs in
  let root = ops.Fsops.root in
  let cred = Types.root_cred in
  let mk name kind =
    match ops.Fsops.mknod cred root name ~kind ~mode:0o666 with
    | Ok _ -> ()
    | Error e -> failwith ("devfs: " ^ Errno.to_string e)
  in
  mk "null" (Types.Chr (1, 3));
  mk "zero" (Types.Chr (1, 5));
  mk "full" (Types.Chr (1, 7));
  mk "urandom" (Types.Chr (1, 9));
  mk "random" (Types.Chr (1, 8));
  mk "tty" (Types.Chr (5, 0));
  mk "console" (Types.Chr (5, 1));
  mk "ptmx" (Types.Chr (5, 2));
  mk "fuse" (Types.Chr (fuse_major, fuse_minor));
  (match ops.Fsops.mkdir cred root "shm" ~mode:0o777 with
  | Ok _ -> ()
  | Error e -> failwith ("devfs: " ^ Errno.to_string e));
  let rng = Rng.create ~seed:0x0dd0 in
  Kernel.register_chardev kernel ~major:1 ~minor:3
    { Kernel.dev_name = "null"; dev_read = (fun ~len:_ -> ""); dev_write = String.length; dev_open = None };
  Kernel.register_chardev kernel ~major:1 ~minor:5
    {
      Kernel.dev_name = "zero";
      dev_read = (fun ~len -> String.make len '\000');
      dev_write = String.length;
      dev_open = None;
    };
  Kernel.register_chardev kernel ~major:1 ~minor:7
    { Kernel.dev_name = "full"; dev_read = (fun ~len -> String.make len '\000'); dev_write = (fun _ -> 0); dev_open = None };
  Kernel.register_chardev kernel ~major:1 ~minor:9
    {
      Kernel.dev_name = "urandom";
      dev_read = (fun ~len -> Bytes.unsafe_to_string (Rng.bytes rng len));
      dev_write = String.length;
      dev_open = None;
    };
  Kernel.register_chardev kernel ~major:1 ~minor:8
    {
      Kernel.dev_name = "random";
      dev_read = (fun ~len -> Bytes.unsafe_to_string (Rng.bytes rng len));
      dev_write = String.length;
      dev_open = None;
    };
  Kernel.register_chardev kernel ~major:5 ~minor:0
    { Kernel.dev_name = "tty"; dev_read = (fun ~len:_ -> ""); dev_write = String.length; dev_open = None };
  Kernel.register_chardev kernel ~major:5 ~minor:1
    { Kernel.dev_name = "console"; dev_read = (fun ~len:_ -> ""); dev_write = String.length; dev_open = None };
  fs
