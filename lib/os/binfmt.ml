(* Executable file format of the simulated world.  A "binary" is a file
   whose content names a program registered with the kernel, optionally
   followed by ballast bytes so images have realistic sizes:

     #!BIN gdb
     xxxxxxxx...

   Shebang scripts ("#!/bin/sh\n...") are also recognized; the kernel
   re-execs the interpreter with the script path appended. *)

type t =
  | Bin of string (* registered program name *)
  | Script of string (* interpreter path *)

let bin_prefix = "#!BIN "

(* Build a binary payload for program [prog] padded to roughly [size]
   bytes. *)
let make ~prog ?(size = 0) () =
  let header = bin_prefix ^ prog ^ "\n" in
  let pad = max 0 (size - String.length header) in
  header ^ String.make pad 'x'

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse content =
  if starts_with ~prefix:bin_prefix content then
    let line = first_line content in
    let name = String.sub line (String.length bin_prefix) (String.length line - String.length bin_prefix) in
    Some (Bin (String.trim name))
  else if starts_with ~prefix:"#!" content then
    let line = first_line content in
    let rest = String.sub line 2 (String.length line - 2) in
    let interp = match String.split_on_char ' ' (String.trim rest) with
      | i :: _ -> i
      | [] -> ""
    in
    if interp = "" then None else Some (Script interp)
  else None
