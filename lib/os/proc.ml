(* Process records: credentials, namespace set, working/root directory
   (vnodes), file-descriptor table, environment, cgroup and LSM context.
   This is the "container context" CNTR gathers in step #1 and re-applies
   in step #3 (§3.2 of the paper). *)

open Repro_vfs

(* A position in the forest of mounted filesystems: which mount, which
   inode inside it. *)
type vnode = { v_mount : Mount.mount; v_ino : Types.ino }

let vnode_eq a b = a.v_mount.Mount.m_id = b.v_mount.Mount.m_id && a.v_ino = b.v_ino

type os_cred = {
  mutable uid : int;
  mutable gid : int;
  mutable groups : int list;
  mutable caps : Caps.Set.t;
}

(* Extension point for driver-specific fds (/dev/fuse connections, PTYs). *)
type custom_payload = ..
type custom_payload += No_payload

type custom_fd = {
  c_name : string;
  c_read : len:int -> (string, Repro_util.Errno.t) result;
  c_write : string -> (int, Repro_util.Errno.t) result;
  c_close : unit -> unit;
  c_readable : unit -> bool;
  c_writable : unit -> bool;
  c_payload : custom_payload;
}

(* An open file description (shared across dup/fork, like Linux). *)
type open_file = {
  of_vnode : vnode;
  of_fh : Fsops.fh;
  of_flags : Types.open_flag list;
  of_path : string;
  mutable of_offset : int;
  mutable of_refs : int;
}

type fd_entry =
  | File of open_file
  | Pipe_r of Pipe.t
  | Pipe_w of Pipe.t
  | Sock_listen of Sock.listener
  | Sock_conn of Sock.endpoint
  | Epoll_fd of Epoll.t
  | Custom of custom_fd

type ns_set = {
  mutable mnt : Mount.ns;
  mutable pid_ns : Namespace.pid_ns;
  mutable net : Namespace.t;
  mutable uts : Namespace.t;
  mutable ipc : Namespace.t;
  mutable user : Namespace.user_ns;
  mutable cgroup_ns : Namespace.t;
}

type t = {
  pid : int;
  mutable ppid : int;
  mutable comm : string;
  cred : os_cred;
  mutable ns : ns_set;
  mutable cwd : vnode;
  mutable root : vnode;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable env : (string * string) list;
  mutable cgroup : string;
  mutable lsm_profile : string option;
  mutable rlimit_fsize : int option;
  mutable umask : int;
  mutable alive : bool;
  mutable exit_code : int option;
}

(* Project the process credential into the slice filesystems understand.
   RLIMIT_FSIZE rides along because Linux enforces it at the writing task
   (see Vfs.Types.cred). *)
let vfs_cred t : Types.cred = {
  Types.uid = t.cred.uid;
  gid = t.cred.gid;
  groups = t.cred.groups;
  cap_dac_override = Caps.Set.mem Caps.CAP_DAC_OVERRIDE t.cred.caps;
  cap_fowner = Caps.Set.mem Caps.CAP_FOWNER t.cred.caps;
  cap_chown = Caps.Set.mem Caps.CAP_CHOWN t.cred.caps;
  cap_fsetid = Caps.Set.mem Caps.CAP_FSETID t.cred.caps;
  rlimit_fsize = t.rlimit_fsize;
}

let getenv t name = List.assoc_opt name t.env

let setenv t name value =
  t.env <- (name, value) :: List.remove_assoc name t.env

let alloc_fd t entry =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd entry;
  fd

let fd t n = Hashtbl.find_opt t.fds n

let is_root t = t.cred.uid = 0
