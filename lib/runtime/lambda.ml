(* Serverless functions (the paper's §6 future work: "we plan to support
   auxiliary tools for lambda functions using CNTR").

   A lambda platform deploys functions as minimal micro-containers: a
   language-runtime layer plus the handler, nothing else — no shell, no
   tools, not even coreutils.  Clients normally have no access to the
   container (the paper's complaint about serverless debuggability); CNTR
   can attach to a warm instance like to any container, because instances
   are ordinary containers under a dedicated engine. *)

open Repro_util
open Repro_os
open Repro_image

type func = {
  fn_name : string;
  fn_handler : string; (* registered program implementing the handler *)
  fn_image : Image.t;
  mutable fn_instances : Container.t list; (* warm instances *)
  mutable fn_invocations : int;
}

type t = {
  l_kernel : Kernel.t;
  l_engine : Engine.t;
  l_funcs : (string, func) Hashtbl.t;
  mutable l_counter : int;
}

(* The function runtime: reads the handler name from /var/task/handler and
   execs it with the payload as argument. *)
let bootstrap_prog = "lambda-bootstrap"

let install_programs kernel =
  Kernel.register_program kernel bootstrap_prog (fun k proc args ->
      match Kernel.exec k proc "/var/task/handler" ("handler" :: List.tl args) with
      | Ok code -> code
      | Error _ -> 42)

let create ~kernel =
  install_programs kernel;
  let engine =
    Engine.create ~kernel ~name:"lambda"
      ~make_id:(fun name -> name)
      ~cgroup:(fun ~id:_ ~name -> "/lambda/" ^ name)
      ~lsm_profile:(Some "lambda-runtime")
  in
  { l_kernel = kernel; l_engine = engine; l_funcs = Hashtbl.create 8; l_counter = 0 }

let engine t = t.l_engine

(* The micro-image: scratch base + runtime layer + the handler.  [size] is
   the deployed code bundle size. *)
let function_image ~name ~handler ~size =
  Image.v ~name:("lambda/" ^ name)
    ~config:
      {
        Image.env = [ ("AWS_LAMBDA_FUNCTION_NAME", name); ("PATH", "/var/runtime") ];
        entrypoint = [ "/var/runtime/bootstrap" ];
        workdir = "/var/task";
        user = 1000;
      }
    [
      Catalog.scratch_base;
      Layer.v ~id:("lambda-runtime:" ^ name)
        [
          Layer.Dir { path = "/var"; mode = 0o755 };
          Layer.Dir { path = "/var/runtime"; mode = 0o755 };
          Layer.Dir { path = "/var/task"; mode = 0o777 };
          Layer.Dir { path = "/tmp"; mode = 0o1777 };
          Layer.File
            {
              path = "/var/runtime/bootstrap";
              mode = 0o755;
              content = Content.Binary { prog = bootstrap_prog; size = Size.kib 64 };
            };
          Layer.File
            {
              path = "/var/task/handler";
              mode = 0o755;
              content = Content.Binary { prog = handler; size };
            };
        ];
    ]

let deploy t ~name ~handler ?(size = Size.kib 256) () =
  let fn =
    {
      fn_name = name;
      fn_handler = handler;
      fn_image = function_image ~name ~handler ~size;
      fn_instances = [];
      fn_invocations = 0;
    }
  in
  Hashtbl.replace t.l_funcs name fn;
  fn

let find t name = Hashtbl.find_opt t.l_funcs name

let ( let* ) = Result.bind

(* Invoke: reuse a warm instance or cold-start a fresh micro-container,
   then run the handler with the payload. *)
let invoke t name ~payload =
  match find t name with
  | None -> Error Errno.ENOENT
  | Some fn ->
      let* instance, cold =
        match fn.fn_instances with
        | inst :: _ when Container.is_running inst -> Ok (inst, false)
        | _ ->
            t.l_counter <- t.l_counter + 1;
            let iname = Printf.sprintf "%s-%d" name t.l_counter in
            let* inst = Engine.run t.l_engine ~name:iname fn.fn_image in
            fn.fn_instances <- inst :: fn.fn_instances;
            Ok (inst, true)
      in
      fn.fn_invocations <- fn.fn_invocations + 1;
      let* code =
        Kernel.exec t.l_kernel instance.Container.ct_main "/var/runtime/bootstrap"
          [ "bootstrap"; payload ]
      in
      Ok (code, cold, instance)

let stats t name =
  match find t name with
  | None -> (0, 0)
  | Some fn -> (fn.fn_invocations, List.length fn.fn_instances)
