(* Engine-independent container core: materialize the image, build the
   namespace sandbox (fresh mount/pid/uts/ipc/net namespaces, private
   mounts, /proc and /dev), apply configuration (env, capabilities, cgroup,
   LSM profile), and launch the entrypoint.  Engines differ only in naming,
   cgroup layout and security-profile conventions — the paper's "~70 LoC
   per engine" observation (§4). *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_image

type t = {
  ct_id : string;
  ct_name : string;
  ct_engine : string;
  ct_image : Image.t;
  ct_main : Proc.t;
  ct_rootfs : Nativefs.t;
  ct_procfs : Procfs.t;
}

let ( let* ) = Result.bind

let short_id t = if String.length t.ct_id > 12 then String.sub t.ct_id 0 12 else t.ct_id

type settings = {
  s_engine : string;
  s_id : string;
  s_name : string;
  s_cgroup : string;
  s_lsm_profile : string option;
  s_privileged : bool;
}

(* [wrap_rootfs] lets observers interpose on the rootfs (Docker-Slim's
   fanotify recorder wraps every operation to log accesses). *)
let create ~kernel ~image ?(wrap_rootfs = fun ops -> ops) settings =
  let init = Kernel.init_proc kernel in
  let* rootfs = Image.materialize image ~kernel ~proc:init in
  let rootfs_ops = wrap_rootfs (Nativefs.ops rootfs) in
  let main = Kernel.fork kernel init in
  (* fresh non-mount namespaces; privileged admin containers keep the
     host's PID and network namespaces (docker run --privileged
     --pid=host --net=host, the CoreOS-toolbox configuration) *)
  let* () =
    Kernel.unshare kernel main
      (if settings.s_privileged then [ Namespace.Uts; Namespace.Ipc; Namespace.Cgroup ]
       else [ Namespace.Pid; Namespace.Uts; Namespace.Ipc; Namespace.Net; Namespace.Cgroup ])
  in
  (* fresh mount namespace rooted at the image rootfs (private mounts, as
     container runtimes configure them — §2.3) *)
  let ns = Mount.create_ns ~fs:rootfs_ops () in
  Kernel.register_mnt_ns kernel ns;
  let root_vnode = { Proc.v_mount = Mount.root_mount ns; v_ino = rootfs_ops.Fsops.root } in
  main.Proc.ns.Proc.mnt <- ns;
  main.Proc.root <- root_vnode;
  main.Proc.cwd <- root_vnode;
  (* /proc scoped to the container's pid namespace, /dev as a fresh devtmpfs *)
  let procfs = Procfs.create ~kernel ~pidns:main.Proc.ns.Proc.pid_ns in
  let ensure_dir path =
    match Kernel.mkdir kernel main path ~mode:0o755 with
    | Ok () | (Error Errno.EEXIST) -> Ok ()
    | Error e -> Error e
  in
  let* () = ensure_dir "/proc" in
  let* () = ensure_dir "/dev" in
  let* () = ensure_dir "/var" in
  let* () = ensure_dir "/var/run" in
  let* _m = Kernel.mount_at kernel main ~fs:(Procfs.ops procfs) "/proc" in
  let devfs = Devfs.create ~kernel in
  let* _m = Kernel.mount_at kernel main ~fs:(Nativefs.ops devfs) "/dev" in
  (* configuration — hostname first, while CAP_SYS_ADMIN is still held *)
  let* () = Kernel.sethostname kernel main (String.sub settings.s_id 0 (min 12 (String.length settings.s_id))) in
  main.Proc.env <- image.Image.config.Image.env;
  main.Proc.cred.Proc.uid <- image.Image.config.Image.user;
  main.Proc.cred.Proc.gid <- image.Image.config.Image.user;
  main.Proc.cred.Proc.groups <- [ image.Image.config.Image.user ];
  main.Proc.cred.Proc.caps <-
    (if settings.s_privileged then Caps.Set.full else Caps.Set.docker_default);
  Kernel.cgroup_attach kernel main ~cgroup:settings.s_cgroup;
  Kernel.apply_lsm_profile kernel main settings.s_lsm_profile;
  (match Kernel.chdir kernel main image.Image.config.Image.workdir with
  | Ok () -> ()
  | Error _ -> ());
  (* launch the entrypoint *)
  let* () =
    match image.Image.config.Image.entrypoint with
    | [] -> Ok ()
    | bin :: args ->
        main.Proc.comm <- Pathx.basename bin;
        let* _code = Kernel.exec kernel main bin (bin :: args) in
        Ok ()
  in
  Ok
    {
      ct_id = settings.s_id;
      ct_name = settings.s_name;
      ct_engine = settings.s_engine;
      ct_image = image;
      ct_main = main;
      ct_rootfs = rootfs;
      ct_procfs = procfs;
    }

let pid t = t.ct_main.Proc.pid

let stop ~kernel t = Kernel.exit kernel t.ct_main 0

let is_running t = t.ct_main.Proc.alive
