(* The container-engine interface and the name→PID resolution CNTR builds
   on (step #1, §3.2.1).  Four engines are provided: Docker, LXC, rkt and
   systemd-nspawn — each a thin convention wrapper over [Container]. *)

open Repro_util
open Repro_os

type t = {
  e_name : string;
  e_kernel : Kernel.t;
  e_containers : (string, Container.t) Hashtbl.t; (* by id *)
  (* engine-specific conventions *)
  e_make_id : string -> string; (* name -> id *)
  e_cgroup : id:string -> name:string -> string;
  e_lsm_profile : string option;
}

let create ~kernel ~name ~make_id ~cgroup ~lsm_profile = {
  e_name = name;
  e_kernel = kernel;
  e_containers = Hashtbl.create 16;
  e_make_id = make_id;
  e_cgroup = cgroup;
  e_lsm_profile = lsm_profile;
}

let ( let* ) = Result.bind

(* Run a container from [image] under this engine's conventions. *)
let run t ~name ?(privileged = false) ?wrap_rootfs image =
  let id = t.e_make_id name in
  let settings =
    {
      Container.s_engine = t.e_name;
      s_id = id;
      s_name = name;
      s_cgroup = t.e_cgroup ~id ~name;
      s_lsm_profile = t.e_lsm_profile;
      s_privileged = privileged;
    }
  in
  let* ct = Container.create ~kernel:t.e_kernel ~image ?wrap_rootfs settings in
  Hashtbl.replace t.e_containers id ct;
  Ok ct

let list t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.e_containers []
  |> List.sort (fun a b -> compare a.Container.ct_name b.Container.ct_name)

let find t key =
  let matches c =
    c.Container.ct_name = key || c.Container.ct_id = key
    || (String.length key >= 4
       && String.length c.Container.ct_id >= String.length key
       && String.sub c.Container.ct_id 0 (String.length key) = key)
  in
  match List.find_opt matches (list t) with
  | Some c when Container.is_running c -> Ok c
  | Some _ -> Error Errno.ESRCH
  | None -> Error Errno.ENOENT

(* Resolve a container name/id to the PID of its main process — the only
   engine-specific operation CNTR needs. *)
let resolve_pid t key =
  let* c = find t key in
  Ok (Container.pid c)

let remove t key =
  match find t key with
  | Ok c ->
      Container.stop ~kernel:t.e_kernel c;
      Hashtbl.remove t.e_containers c.Container.ct_id;
      Ok ()
  | Error e -> Error e

(* --- the four engines ------------------------------------------------------ *)

(* Hex digest stand-in for Docker's content-addressed container ids. *)
let hex_id =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let h = Hashtbl.hash (name, !counter) in
    let raw = Printf.sprintf "%08x%08x%08x%08x" h (h * 31) (h * 131) (h * 1031) in
    String.sub (raw ^ raw) 0 64

let docker ~kernel =
  create ~kernel ~name:"docker" ~make_id:hex_id
    ~cgroup:(fun ~id ~name:_ -> "/docker/" ^ id)
    ~lsm_profile:(Some "docker-default")

let lxc ~kernel =
  create ~kernel ~name:"lxc"
    ~make_id:(fun name -> name)
    ~cgroup:(fun ~id:_ ~name -> "/lxc/" ^ name)
    ~lsm_profile:(Some "lxc-container-default")

let rkt ~kernel =
  let uuid name =
    let h = Hashtbl.hash name in
    Printf.sprintf "%08x-%04x-%04x-%04x-%012x" h (h land 0xffff) ((h lsr 4) land 0xffff)
      ((h lsr 8) land 0xffff) (h land 0xffffffffffff)
  in
  create ~kernel ~name:"rkt" ~make_id:uuid
    ~cgroup:(fun ~id ~name:_ -> "/machine.slice/machine-rkt-" ^ id ^ ".scope")
    ~lsm_profile:None

let systemd_nspawn ~kernel =
  create ~kernel ~name:"systemd-nspawn"
    ~make_id:(fun name -> name)
    ~cgroup:(fun ~id:_ ~name -> "/machine.slice/systemd-nspawn@" ^ name ^ ".service")
    ~lsm_profile:None

(* A registry of engines, so `cntr attach <name>` can search them all. *)
type engines = t list

let all ~kernel = [ docker ~kernel; lxc ~kernel; rkt ~kernel; systemd_nspawn ~kernel ]

let by_name engines name = List.find_opt (fun e -> e.e_name = name) engines

let resolve_any engines key =
  let rec go = function
    | [] -> Error Errno.ENOENT
    | e :: rest -> (
        match find e key with
        | Ok c -> Ok (e, c)
        | Error _ -> go rest)
  in
  go engines
