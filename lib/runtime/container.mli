(** Engine-independent container core: image materialization, the namespace
    sandbox (fresh mount/pid/uts/ipc/net namespaces with private mounts,
    /proc and /dev), configuration (env, capabilities, cgroup, LSM) and the
    entrypoint launch.

    Privileged containers keep the host's PID and network namespaces, like
    `docker run --privileged --pid=host` (the CoreOS-toolbox setup). *)

open Repro_os

type t = {
  ct_id : string;
  ct_name : string;
  ct_engine : string;
  ct_image : Repro_image.Image.t;
  ct_main : Proc.t;  (** the container's main process *)
  ct_rootfs : Repro_vfs.Nativefs.t;
  ct_procfs : Procfs.t;  (** /proc scoped to the container's pid namespace *)
}

(** Engine conventions applied at creation time. *)
type settings = {
  s_engine : string;
  s_id : string;
  s_name : string;
  s_cgroup : string;
  s_lsm_profile : string option;
  s_privileged : bool;
}

(** Materialize the image and boot the container. *)
val create :
  kernel:Kernel.t ->
  image:Repro_image.Image.t ->
  ?wrap_rootfs:(Repro_vfs.Fsops.t -> Repro_vfs.Fsops.t) ->
  settings ->
  (t, Repro_util.Errno.t) result

(** First 12 characters of the container id. *)
val short_id : t -> string

(** PID of the main process. *)
val pid : t -> int

val stop : kernel:Kernel.t -> t -> unit
val is_running : t -> bool
