(** Serverless functions (the paper's §6 future work): a lambda platform
    whose instances are sealed micro-containers (runtime + handler, no
    shell, no tools) under a dedicated engine — so CNTR can attach to a
    warm instance and debug it like any container. *)

open Repro_os

type func = {
  fn_name : string;
  fn_handler : string;  (** registered program implementing the handler *)
  fn_image : Repro_image.Image.t;
  mutable fn_instances : Container.t list;  (** warm instances *)
  mutable fn_invocations : int;
}

type t

(** The bootstrap program name baked into every function image. *)
val bootstrap_prog : string

(** Create a platform (registers the bootstrap program, creates the
    "lambda" engine). *)
val create : kernel:Kernel.t -> t

(** The platform's engine — include it in the engine list passed to
    {!Repro_cntr.Attach.attach} to make instances attachable. *)
val engine : t -> Engine.t

(** Deploy a function whose handler is the registered program [handler];
    [size] is the deployed code-bundle size (default 256 KiB). *)
val deploy : t -> name:string -> handler:string -> ?size:int -> unit -> func

val find : t -> string -> func option

(** Invoke the function: reuses a warm instance or cold-starts one.
    Returns (handler exit code, whether this was a cold start, instance). *)
val invoke :
  t -> string -> payload:string -> (int * bool * Container.t, Repro_util.Errno.t) result

(** (invocations so far, warm instances) for a function. *)
val stats : t -> string -> int * int
