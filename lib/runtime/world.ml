(* A ready-to-use simulated machine: kernel over a host root filesystem
   with /dev, /proc, a populated image registry and all four container
   engines.  Tests, examples and benchmarks all start here. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_image

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  kernel : Kernel.t;
  init : Proc.t;
  rootfs : Nativefs.t;
  registry : Registry.t;
  engines : Engine.engines;
  budget : Mem_budget.t;
}

let ok = Errno.ok_exn

let write_file kernel proc path ?(mode = 0o644) content =
  let fd = ok (Kernel.open_ kernel proc path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode) in
  ignore (ok (Kernel.write kernel proc fd content));
  ok (Kernel.close kernel proc fd)

(* Populate a host filesystem: directories, /etc files, and host tool
   binaries (registered separately as programs). *)
let populate_host kernel init =
  List.iter
    (fun d -> ok (Kernel.mkdir kernel init d ~mode:0o755))
    [
      "/bin"; "/usr"; "/usr/bin"; "/usr/sbin"; "/usr/share"; "/lib"; "/etc";
      "/dev"; "/proc"; "/tmp"; "/var"; "/var/lib"; "/var/run"; "/root"; "/home"; "/opt";
    ];
  ok (Kernel.chmod kernel init "/tmp" 0o1777);
  write_file kernel init "/etc/passwd" "root:x:0:0:root:/root:/bin/sh\n";
  write_file kernel init "/etc/group" "root:x:0:\n";
  write_file kernel init "/etc/hostname" "host\n";
  write_file kernel init "/etc/hosts" "127.0.0.1 localhost\n";
  write_file kernel init "/etc/resolv.conf" "nameserver 10.0.0.2\n";
  write_file kernel init "/etc/os-release" "ID=coreos\nVERSION_ID=1688\n"

(* Host binaries: everything a developer's machine would have, including
   the debugging tools CNTR forwards into containers. *)
let host_tools = [
  "sh"; "ls"; "cat"; "echo"; "env"; "which"; "ps"; "gdb"; "strace"; "top";
  "vi"; "less"; "grep"; "find"; "id"; "hostname"; "mount"; "pkg"; "du"; "stat";
  "sort"; "uniq"; "wc"; "head"; "tail";
]

let install_host_binaries kernel init =
  List.iter
    (fun tool ->
      write_file kernel init ("/usr/bin/" ^ tool) ~mode:0o755
        (Binfmt.make ~prog:tool ~size:(Size.kib 24) ()))
    host_tools;
  write_file kernel init "/bin/sh" ~mode:0o755 (Binfmt.make ~prog:"sh" ~size:(Size.kib 24) ())

(* [memory_mb] bounds the page-cache budget shared by the native cache and
   any FUSE driver caches (the paper's testbed had 16 GB; benchmarks scale
   it down). *)
let create ?(memory_mb = 1024) ?(disk = false) () =
  let clock = Clock.create () in
  let cost = Cost.default in
  (* One observability handle for the whole machine: every layer below
     (kernel, page caches, FUSE connections) registers its metrics here. *)
  let obs = Repro_obs.Obs.create () in
  let metrics = Repro_obs.Obs.metrics obs in
  let budget = Mem_budget.create ~limit_bytes:(memory_mb * 1024 * 1024) in
  let store =
    if disk then
      let cache =
        Page_cache.create ~metrics ~name:"host-ext4" ~budget
          ~page_size:cost.Cost.page_size ()
      in
      Store.Ssd { cache; flush_pages = 64 }
    else Store.Ram
  in
  let rootfs = Nativefs.create ~metrics ~name:"host-root" ~clock ~cost store () in
  let kernel = Kernel.create ~obs ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc kernel in
  populate_host kernel init;
  install_host_binaries kernel init;
  let devfs = Devfs.create ~kernel in
  ignore (ok (Kernel.mount_at kernel init ~fs:(Nativefs.ops devfs) "/dev"));
  let procfs = Procfs.create ~kernel ~pidns:init.Proc.ns.Proc.pid_ns in
  ignore (ok (Kernel.mount_at kernel init ~fs:(Procfs.ops procfs) "/proc"));
  Programs.install kernel;
  let registry = Registry.create ~metrics ~clock () in
  Catalog.publish registry;
  let engines = Engine.all ~kernel in
  { clock; cost; obs; kernel; init; rootfs; registry; engines; budget }

let docker t = List.nth t.engines 0

let engine t name =
  match Engine.by_name t.engines name with
  | Some e -> e
  | None -> invalid_arg ("World.engine: unknown engine " ^ name)

(* Pull an image from the registry (charging network time) and run it. *)
let run_container t ~engine:eng ~name ~image_ref ?privileged () =
  match Registry.pull t.registry image_ref with
  | Error `Not_found -> Error Repro_util.Errno.ENOENT
  | Ok (image, _bytes) -> Engine.run eng ~name ?privileged image
