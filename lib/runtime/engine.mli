(** Container engines and the name→PID resolution CNTR builds on (§3.2.1).

    Four engines are provided — Docker, LXC, rkt, systemd-nspawn — each a
    thin convention wrapper (ids, cgroup layout, LSM profile) over the
    shared {!Container} core, matching the paper's "~70 LoC per engine"
    observation (§4). *)

open Repro_os

type t = {
  e_name : string;
  e_kernel : Kernel.t;
  e_containers : (string, Container.t) Hashtbl.t;
  e_make_id : string -> string;
  e_cgroup : id:string -> name:string -> string;
  e_lsm_profile : string option;
}

(** Build a custom engine from its conventions. *)
val create :
  kernel:Kernel.t ->
  name:string ->
  make_id:(string -> string) ->
  cgroup:(id:string -> name:string -> string) ->
  lsm_profile:string option ->
  t

(** Run a container from [image] under this engine's conventions.
    [wrap_rootfs] lets observers interpose on the rootfs (Docker-Slim). *)
val run :
  t ->
  name:string ->
  ?privileged:bool ->
  ?wrap_rootfs:(Repro_vfs.Fsops.t -> Repro_vfs.Fsops.t) ->
  Repro_image.Image.t ->
  (Container.t, Repro_util.Errno.t) result

(** All containers of this engine, sorted by name. *)
val list : t -> Container.t list

(** Find a running container by name, full id, or id prefix (≥ 4 chars). *)
val find : t -> string -> (Container.t, Repro_util.Errno.t) result

(** Resolve a container to the PID of its main process — the only
    engine-specific operation CNTR needs. *)
val resolve_pid : t -> string -> (int, Repro_util.Errno.t) result

(** Stop and deregister a container. *)
val remove : t -> string -> (unit, Repro_util.Errno.t) result

(** The four stock engines. *)

val docker : kernel:Kernel.t -> t
val lxc : kernel:Kernel.t -> t
val rkt : kernel:Kernel.t -> t
val systemd_nspawn : kernel:Kernel.t -> t

type engines = t list

(** All four engines on one kernel. *)
val all : kernel:Kernel.t -> engines

val by_name : engines -> string -> t option

(** Search every engine for a container matching [key]. *)
val resolve_any : engines -> string -> (t * Container.t, Repro_util.Errno.t) result
