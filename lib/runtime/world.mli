(** A ready-to-use simulated machine: kernel over a host root filesystem
    with /dev and /proc, a registry populated with the Top-50 catalogue,
    and all four container engines. *)

open Repro_util
open Repro_os

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
      (** the machine-wide observability handle: every layer's metrics
          ([os.*], [fuse.*], [cntrfs.*], [vfs.*]) land in this registry *)
  kernel : Kernel.t;
  init : Proc.t;  (** pid 1 *)
  rootfs : Repro_vfs.Nativefs.t;
  registry : Repro_image.Registry.t;
  engines : Engine.engines;
  budget : Repro_vfs.Mem_budget.t;  (** shared page-cache budget *)
}

(** Host binaries installed under /usr/bin (their programs are registered
    separately, e.g. by [Repro_cntr.Toolbox.register_all]). *)
val host_tools : string list

(** Build the machine.  [memory_mb] bounds the page-cache budget (default
    1024); [disk] selects an SSD-backed host filesystem (default RAM). *)
val create : ?memory_mb:int -> ?disk:bool -> unit -> t

(** The Docker engine. *)
val docker : t -> Engine.t

(** Look an engine up by name; raises [Invalid_argument] if unknown. *)
val engine : t -> string -> Engine.t

(** Pull [image_ref] from the registry (charging network time) and run it
    under [engine]. *)
val run_container :
  t ->
  engine:Engine.t ->
  name:string ->
  image_ref:string ->
  ?privileged:bool ->
  unit ->
  (Container.t, Errno.t) result

(** Write a file via [proc], creating/truncating it (test fixture helper). *)
val write_file : Kernel.t -> Proc.t -> string -> ?mode:int -> string -> unit
