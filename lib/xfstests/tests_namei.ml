(* generic group: name resolution, create/unlink, rename, links. *)

open Repro_util
open Repro_vfs
open Repro_os
open Harness

let p env rel = env.base ^ "/" ^ rel

let t id groups desc run = { t_id = id; t_groups = groups; t_desc = desc; t_run = run }

let quick = [ "auto"; "quick" ]

let tests = [
  t 1 quick "create and unlink a file" (fun env ->
      let* () = write_file env env.root (p env "f") "hello" in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      let* () = check (st.Types.st_kind = Types.Reg) "not a regular file" in
      let* () = req "unlink" (Kernel.unlink env.k env.root (p env "f")) in
      expect_errno ~what:"stat after unlink" Errno.ENOENT (Kernel.stat env.k env.root (p env "f")));

  t 2 quick "mkdir and rmdir" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "d")) in
      let* () = check (st.Types.st_kind = Types.Dir) "not a directory" in
      let* () = req "rmdir" (Kernel.rmdir env.k env.root (p env "d")) in
      expect_errno ~what:"stat after rmdir" Errno.ENOENT (Kernel.stat env.k env.root (p env "d")));

  t 3 quick "deeply nested directories" (fun env ->
      let rec deep acc n = if n = 0 then acc else deep (acc ^ "/d") (n - 1) in
      let rec build path n =
        if n = 0 then Ok ()
        else
          let path = path ^ "/d" in
          let* () = req "mkdir" (Kernel.mkdir env.k env.root path ~mode:0o755) in
          build path (n - 1)
      in
      let* () = build env.base 20 in
      let* () = write_file env env.root (deep env.base 20 ^ "/leaf") "x" in
      let* data = read_file env env.root (deep env.base 20 ^ "/leaf") in
      check_str ~what:"leaf content" "x" data);

  t 4 quick "ENOENT for missing paths" (fun env ->
      let* () = expect_errno ~what:"stat missing" Errno.ENOENT (Kernel.stat env.k env.root (p env "nope")) in
      let* () =
        expect_errno ~what:"open missing" Errno.ENOENT
          (Kernel.open_ env.k env.root (p env "nope") [ Types.O_RDONLY ] ~mode:0)
      in
      expect_errno ~what:"unlink missing" Errno.ENOENT (Kernel.unlink env.k env.root (p env "nope")));

  t 5 quick "O_CREAT|O_EXCL fails on existing" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"open O_EXCL" Errno.EEXIST
        (Kernel.open_ env.k env.root (p env "f") [ Types.O_CREAT; Types.O_EXCL; Types.O_WRONLY ] ~mode:0o644));

  t 6 quick "ENOTDIR walking through a file" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"walk through file" Errno.ENOTDIR (Kernel.stat env.k env.root (p env "f/under")));

  t 7 quick "EISDIR opening directory for write" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      expect_errno ~what:"open dir O_WRONLY" Errno.EISDIR
        (Kernel.open_ env.k env.root (p env "d") [ Types.O_WRONLY ] ~mode:0));

  t 8 quick "ENAMETOOLONG for a 300-byte name" (fun env ->
      let long = String.make 300 'n' in
      expect_errno ~what:"create long name" Errno.ENAMETOOLONG
        (Kernel.open_ env.k env.root (p env long) [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644));

  t 9 quick "ENOTEMPTY for rmdir of non-empty dir" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      let* () = write_file env env.root (p env "d/f") "x" in
      let* () = expect_errno ~what:"rmdir" Errno.ENOTEMPTY (Kernel.rmdir env.k env.root (p env "d")) in
      let* () = req "unlink" (Kernel.unlink env.k env.root (p env "d/f")) in
      req "rmdir now empty" (Kernel.rmdir env.k env.root (p env "d")));

  t 10 quick "rmdir of a file is ENOTDIR" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"rmdir file" Errno.ENOTDIR (Kernel.rmdir env.k env.root (p env "f")));

  t 11 quick "unlink of a directory is EISDIR" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      expect_errno ~what:"unlink dir" Errno.EISDIR (Kernel.unlink env.k env.root (p env "d")));

  t 12 quick "dot and dotdot resolve" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      let* () = write_file env env.root (p env "probe") "self" in
      let* data = read_file env env.root (p env "d/./../probe") in
      check_str ~what:"dot-dotdot walk" "self" data);

  (* --- rename ------------------------------------------------------------ *)

  t 13 quick "rename a file" (fun env ->
      let* () = write_file env env.root (p env "a") "payload" in
      let* () = req "rename" (Kernel.rename env.k env.root ~src:(p env "a") ~dst:(p env "b")) in
      let* () = expect_errno ~what:"old gone" Errno.ENOENT (Kernel.stat env.k env.root (p env "a")) in
      let* data = read_file env env.root (p env "b") in
      check_str ~what:"payload" "payload" data);

  t 14 quick "rename replaces existing file" (fun env ->
      let* () = write_file env env.root (p env "a") "new" in
      let* () = write_file env env.root (p env "b") "old" in
      let* () = req "rename" (Kernel.rename env.k env.root ~src:(p env "a") ~dst:(p env "b")) in
      let* data = read_file env env.root (p env "b") in
      check_str ~what:"replaced" "new" data);

  t 15 quick "rename dir over empty dir" (fun env ->
      let* () = req "mkdir a" (Kernel.mkdir env.k env.root (p env "a") ~mode:0o755) in
      let* () = write_file env env.root (p env "a/f") "x" in
      let* () = req "mkdir b" (Kernel.mkdir env.k env.root (p env "b") ~mode:0o755) in
      let* () = req "rename" (Kernel.rename env.k env.root ~src:(p env "a") ~dst:(p env "b")) in
      let* data = read_file env env.root (p env "b/f") in
      check_str ~what:"moved content" "x" data);

  t 16 quick "rename dir over non-empty dir is ENOTEMPTY" (fun env ->
      let* () = req "mkdir a" (Kernel.mkdir env.k env.root (p env "a") ~mode:0o755) in
      let* () = req "mkdir b" (Kernel.mkdir env.k env.root (p env "b") ~mode:0o755) in
      let* () = write_file env env.root (p env "b/f") "x" in
      expect_errno ~what:"rename" Errno.ENOTEMPTY
        (Kernel.rename env.k env.root ~src:(p env "a") ~dst:(p env "b")));

  t 17 quick "rename dir into own subtree is EINVAL" (fun env ->
      let* () = req "mkdir a" (Kernel.mkdir env.k env.root (p env "a") ~mode:0o755) in
      let* () = req "mkdir a/sub" (Kernel.mkdir env.k env.root (p env "a/sub") ~mode:0o755) in
      expect_errno ~what:"rename into self" Errno.EINVAL
        (Kernel.rename env.k env.root ~src:(p env "a") ~dst:(p env "a/sub/oops")));

  t 18 quick "rename of missing source is ENOENT" (fun env ->
      expect_errno ~what:"rename" Errno.ENOENT
        (Kernel.rename env.k env.root ~src:(p env "missing") ~dst:(p env "dst")));

  t 19 quick "rename file over dir is EISDIR" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      expect_errno ~what:"rename" Errno.EISDIR
        (Kernel.rename env.k env.root ~src:(p env "f") ~dst:(p env "d")));

  t 20 quick "rename dir over file is ENOTDIR" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"rename" Errno.ENOTDIR
        (Kernel.rename env.k env.root ~src:(p env "d") ~dst:(p env "f")));

  (* --- links -------------------------------------------------------------- *)

  t 21 quick "hardlinks share the inode" (fun env ->
      let* () = write_file env env.root (p env "a") "shared" in
      let* () = req "link" (Kernel.link env.k env.root ~target:(p env "a") ~linkpath:(p env "b")) in
      let* sta = req "stat a" (Kernel.stat env.k env.root (p env "a")) in
      let* stb = req "stat b" (Kernel.stat env.k env.root (p env "b")) in
      let* () = check_int ~what:"inode" sta.Types.st_ino stb.Types.st_ino in
      check_int ~what:"nlink" 2 sta.Types.st_nlink);

  t 22 quick "hardlink to a directory is EPERM" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      expect_errno ~what:"link dir" Errno.EPERM
        (Kernel.link env.k env.root ~target:(p env "d") ~linkpath:(p env "dlink")));

  t 23 quick "data survives while one link remains" (fun env ->
      let* () = write_file env env.root (p env "a") "persist" in
      let* () = req "link" (Kernel.link env.k env.root ~target:(p env "a") ~linkpath:(p env "b")) in
      let* () = req "unlink a" (Kernel.unlink env.k env.root (p env "a")) in
      let* data = read_file env env.root (p env "b") in
      let* () = check_str ~what:"data" "persist" data in
      let* st = req "stat b" (Kernel.stat env.k env.root (p env "b")) in
      check_int ~what:"nlink" 1 st.Types.st_nlink);

  t 24 quick "directory nlink accounting" (fun env ->
      let* st0 = req "stat base" (Kernel.stat env.k env.root env.base) in
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d1") ~mode:0o755) in
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d2") ~mode:0o755) in
      let* st1 = req "stat base" (Kernel.stat env.k env.root env.base) in
      let* () = check_int ~what:"nlink after 2 mkdir" (st0.Types.st_nlink + 2) st1.Types.st_nlink in
      let* () = req "rmdir" (Kernel.rmdir env.k env.root (p env "d2")) in
      let* st2 = req "stat base" (Kernel.stat env.k env.root env.base) in
      check_int ~what:"nlink after rmdir" (st0.Types.st_nlink + 1) st2.Types.st_nlink);

  t 25 quick "symlink create and readlink" (fun env ->
      let* () = req "symlink" (Kernel.symlink env.k env.root ~target:"some/target" ~linkpath:(p env "l")) in
      let* target = req "readlink" (Kernel.readlink env.k env.root (p env "l")) in
      let* () = check_str ~what:"target" "some/target" target in
      let* st = req "lstat" (Kernel.lstat env.k env.root (p env "l")) in
      check (st.Types.st_kind = Types.Symlink) "lstat kind");

  t 26 quick "dangling symlink: stat ENOENT, lstat ok" (fun env ->
      let* () = req "symlink" (Kernel.symlink env.k env.root ~target:(p env "missing") ~linkpath:(p env "l")) in
      let* () = expect_errno ~what:"stat" Errno.ENOENT (Kernel.stat env.k env.root (p env "l")) in
      let* _ = req "lstat" (Kernel.lstat env.k env.root (p env "l")) in
      Ok ());

  t 27 quick "symlink loops are ELOOP" (fun env ->
      let* () = req "symlink a" (Kernel.symlink env.k env.root ~target:(p env "b") ~linkpath:(p env "a")) in
      let* () = req "symlink b" (Kernel.symlink env.k env.root ~target:(p env "a") ~linkpath:(p env "b")) in
      expect_errno ~what:"stat loop" Errno.ELOOP (Kernel.stat env.k env.root (p env "a/x")));

  t 28 quick "relative symlink resolution" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "d") ~mode:0o755) in
      let* () = write_file env env.root (p env "d/real") "via-rel" in
      let* () = req "symlink" (Kernel.symlink env.k env.root ~target:"real" ~linkpath:(p env "d/alias")) in
      let* data = read_file env env.root (p env "d/alias") in
      check_str ~what:"content" "via-rel" data);
]
