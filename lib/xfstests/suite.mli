(** The full generic suite: 94 tests, matching the paper's count (§5.1). *)

val all : Harness.test list
val count : int

(** The four tests the paper reports failing through CntrFS. *)
val expected_cntrfs_failures : int list

val by_group : string -> Harness.test list
