(* generic group: permissions, ownership, mode bits, xattrs, ACLs. *)

open Repro_util
open Repro_vfs
open Repro_os
open Harness

let p env rel = env.base ^ "/" ^ rel

let t id groups desc run = { t_id = id; t_groups = groups; t_desc = desc; t_run = run }

let quick = [ "auto"; "quick" ]

let tests = [
  t 60 quick "chmod changes the mode" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () = req "chmod" (Kernel.chmod env.k env.root (p env "f") 0o640) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check_int ~what:"mode" 0o640 st.Types.st_mode);

  t 61 quick "chmod by non-owner is EPERM" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"chmod" Errno.EPERM (Kernel.chmod env.k env.user (p env "f") 0o777));

  t 62 quick "access(2) honours mode bits" (fun env ->
      let* () = write_file env env.root (p env "f") ~mode:0o640 "x" in
      let* () = req "root r" (Kernel.access env.k env.root (p env "f") Types.r_ok) in
      let* () = expect_errno ~what:"user r" Errno.EACCES (Kernel.access env.k env.user (p env "f") Types.r_ok) in
      let* () = req "chmod 644" (Kernel.chmod env.k env.root (p env "f") 0o644) in
      let* () = req "user r now" (Kernel.access env.k env.user (p env "f") Types.r_ok) in
      expect_errno ~what:"user w" Errno.EACCES (Kernel.access env.k env.user (p env "f") Types.w_ok));

  t 63 quick "0700 directory blocks other users" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "priv") ~mode:0o700) in
      let* () = write_file env env.root (p env "priv/secret") "s" in
      let* () = expect_errno ~what:"user lookup" Errno.EACCES (Kernel.stat env.k env.user (p env "priv/secret")) in
      let* () =
        expect_errno ~what:"user create" Errno.EACCES
          (Kernel.open_ env.k env.user (p env "priv/new") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      expect_errno ~what:"user readdir" Errno.EACCES (Kernel.readdir env.k env.user (p env "priv")));

  t 64 quick "open for write requires w permission" (fun env ->
      let* () = write_file env env.root (p env "f") ~mode:0o644 "x" in
      let* fd = req "user open r" (Kernel.open_ env.k env.user (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      expect_errno ~what:"user open w" Errno.EACCES
        (Kernel.open_ env.k env.user (p env "f") [ Types.O_WRONLY ] ~mode:0));

  t 65 quick "sticky directory restricts deletion" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "shared") ~mode:0o777) in
      let* () = req "chmod sticky" (Kernel.chmod env.k env.root (p env "shared") 0o1777) in
      let* fd =
        req "user creates"
          (Kernel.open_ env.k env.user (p env "shared/mine") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* () =
        expect_errno ~what:"user2 unlink" Errno.EPERM (Kernel.unlink env.k env.user2 (p env "shared/mine"))
      in
      req "owner unlink" (Kernel.unlink env.k env.user (p env "shared/mine")));

  t 66 quick "write by owner clears setuid" (fun env ->
      let* fd =
        req "user create"
          (Kernel.open_ env.k env.user (p env "suid") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* () = req "chmod 4755" (Kernel.chmod env.k env.user (p env "suid") 0o4755) in
      let* fd = req "reopen" (Kernel.open_ env.k env.user (p env "suid") [ Types.O_WRONLY ] ~mode:0) in
      let* _ = req "write" (Kernel.write env.k env.user fd "data") in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "suid")) in
      check (st.Types.st_mode land Types.s_isuid = 0) "setuid bit not cleared by write");

  t 67 quick "new files inherit gid from setgid directory" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "sg") ~mode:0o777) in
      let* () = req "chown" (Kernel.chown env.k env.root (p env "sg") ~uid:None ~gid:(Some 5000)) in
      let* () = req "chmod 2777" (Kernel.chmod env.k env.root (p env "sg") 0o2777) in
      let* fd =
        req "user create"
          (Kernel.open_ env.k env.user (p env "sg/f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "sg/f")) in
      check_int ~what:"inherited gid" 5000 st.Types.st_gid);

  t 68 quick "subdirectories inherit the setgid bit" (fun env ->
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "sg") ~mode:0o777) in
      let* () = req "chown" (Kernel.chown env.k env.root (p env "sg") ~uid:None ~gid:(Some 5000)) in
      let* () = req "chmod 2777" (Kernel.chmod env.k env.root (p env "sg") 0o2777) in
      let* () = req "user mkdir" (Kernel.mkdir env.k env.user (p env "sg/sub") ~mode:0o755) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "sg/sub")) in
      let* () = check (st.Types.st_mode land Types.s_isgid <> 0) "setgid not inherited" in
      check_int ~what:"gid" 5000 st.Types.st_gid);

  t 69 quick "chown requires privilege" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () =
        expect_errno ~what:"user chown" Errno.EPERM
          (Kernel.chown env.k env.user (p env "f") ~uid:(Some 1000) ~gid:None)
      in
      let* () = req "root chown" (Kernel.chown env.k env.root (p env "f") ~uid:(Some 1000) ~gid:(Some 1000)) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      let* () = check_int ~what:"uid" 1000 st.Types.st_uid in
      check_int ~what:"gid" 1000 st.Types.st_gid);

  t 70 quick "unprivileged chown clears setuid/setgid" (fun env ->
      let* fd =
        req "user create"
          (Kernel.open_ env.k env.user (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* () = req "chmod 6755" (Kernel.chmod env.k env.user (p env "f") 0o6755) in
      (* owner changes the group to their own group: allowed, clears bits *)
      let* () = req "user chgrp" (Kernel.chown env.k env.user (p env "f") ~uid:None ~gid:(Some 1000)) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check (st.Types.st_mode land (Types.s_isuid lor Types.s_isgid) = 0) "suid/sgid not cleared by chown");

  t 71 quick "umask masks creation mode" (fun env ->
      env.user.Proc.umask <- 0o077;
      let* fd =
        req "create" (Kernel.open_ env.k env.user (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o666)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      env.user.Proc.umask <- 0o022;
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check_int ~what:"mode" 0o600 st.Types.st_mode);

  t 72 quick "exec requires the x bit" (fun env ->
      let* () = write_file env env.root (p env "prog") ~mode:0o755 (Binfmt.make ~prog:"xfs-probe" ()) in
      let* code = req "exec" (Kernel.exec env.k env.user (p env "prog") [ "prog" ]) in
      let* () = check_int ~what:"exit code" 0 code in
      let* () = req "chmod -x" (Kernel.chmod env.k env.root (p env "prog") 0o644) in
      expect_errno ~what:"exec without x" Errno.EACCES (Kernel.exec env.k env.user (p env "prog") [ "prog" ]));

  t 73 quick "truncate requires write permission" (fun env ->
      let* () = write_file env env.root (p env "f") ~mode:0o644 "data" in
      let* () = expect_errno ~what:"user truncate" Errno.EACCES (Kernel.truncate env.k env.user (p env "f") 0) in
      let* () = req "chmod 666" (Kernel.chmod env.k env.root (p env "f") 0o666) in
      req "user truncate now" (Kernel.truncate env.k env.user (p env "f") 0));

  (* --- xattrs -------------------------------------------------------------- *)

  t 74 quick "xattr set/get/list/remove" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () = req "setxattr" (Kernel.setxattr env.k env.root (p env "f") "user.alpha" "1") in
      let* () = req "setxattr" (Kernel.setxattr env.k env.root (p env "f") "user.beta" "2") in
      let* v = req "getxattr" (Kernel.getxattr env.k env.root (p env "f") "user.alpha") in
      let* () = check_str ~what:"value" "1" v in
      let* names = req "listxattr" (Kernel.listxattr env.k env.root (p env "f")) in
      let* () = check (names = [ "user.alpha"; "user.beta" ]) "list" in
      let* () = req "removexattr" (Kernel.removexattr env.k env.root (p env "f") "user.alpha") in
      expect_errno ~what:"get removed" Errno.ENODATA (Kernel.getxattr env.k env.root (p env "f") "user.alpha"));

  t 75 quick "missing xattr is ENODATA" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () = expect_errno ~what:"get" Errno.ENODATA (Kernel.getxattr env.k env.root (p env "f") "user.none") in
      expect_errno ~what:"remove" Errno.ENODATA (Kernel.removexattr env.k env.root (p env "f") "user.none"));

  t 76 quick "xattr value can be overwritten" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () = req "set v1" (Kernel.setxattr env.k env.root (p env "f") "user.k" "v1") in
      let* () = req "set v2" (Kernel.setxattr env.k env.root (p env "f") "user.k" "v2") in
      let* v = req "get" (Kernel.getxattr env.k env.root (p env "f") "user.k") in
      check_str ~what:"overwritten" "v2" v);

  t 77 quick "user.* xattr needs ownership" (fun env ->
      let* () = write_file env env.root (p env "f") ~mode:0o666 "x" in
      expect_errno ~what:"user setxattr on root file" Errno.EPERM
        (Kernel.setxattr env.k env.user (p env "f") "user.mine" "v"));

  t 78 quick "trusted.* xattr needs privilege" (fun env ->
      let* fd =
        req "user create"
          (Kernel.open_ env.k env.user (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      let* () =
        expect_errno ~what:"user trusted" Errno.EPERM
          (Kernel.setxattr env.k env.user (p env "f") "trusted.overlay" "v")
      in
      req "root trusted" (Kernel.setxattr env.k env.root (p env "f") "trusted.overlay" "v"));

  t 79 quick "ACL mask narrows named-user access" (fun env ->
      let* () = write_file env env.root (p env "f") ~mode:0o600 "secret" in
      (* grant user 1000 read via ACL, matching mode group bits as mask *)
      let* () =
        req "set acl"
          (Kernel.setxattr env.k env.root (p env "f") "system.posix_acl_access"
             "u::rw-,u:1000:r--,g::---,m::r--,o::---")
      in
      let* () = req "chmod to reflect mask" (Kernel.chmod env.k env.root (p env "f") 0o640) in
      let* () = req "user access via acl" (Kernel.access env.k env.user (p env "f") Types.r_ok) in
      (* user2 is not in the ACL *)
      expect_errno ~what:"user2 denied" Errno.EACCES (Kernel.access env.k env.user2 (p env "f") Types.r_ok));
]
