(* The xfstests-style regression harness (§5.1).  A test is a predicate
   over a scratch directory on the filesystem under test; the same 94-test
   "generic" suite runs against native tmpfs and against CntrFS mounted on
   top of tmpfs (the paper's methodology), and the report compares
   outcomes. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_cntrfs

type env = {
  k : Kernel.t;
  root : Proc.t; (* privileged *)
  user : Proc.t; (* uid 1000, no capabilities *)
  user2 : Proc.t; (* uid 1001, no capabilities *)
  base : string; (* per-test scratch directory, mode 0777 *)
}

type test = {
  t_id : int; (* xfstests-style "generic/NNN" number *)
  t_groups : string list; (* auto, quick, aio, prealloc, ioctl, dangerous *)
  t_desc : string;
  t_run : env -> (unit, string) result;
}

type outcome = Pass | Fail of string

type row = { r_test : test; r_outcome : outcome }

type summary = {
  s_rows : row list;
  s_total : int;
  s_passed : int;
  s_failed : (int * string) list;
}

(* --- assertion helpers ---------------------------------------------------- *)

let ( let* ) = Result.bind

let check cond msg = if cond then Ok () else Error msg

let check_eq ~what pp expected actual =
  if expected = actual then Ok ()
  else Error (Printf.sprintf "%s: expected %s, got %s" what (pp expected) (pp actual))

let check_int ~what expected actual = check_eq ~what string_of_int expected actual
let check_str ~what expected actual = check_eq ~what (fun s -> "\"" ^ String.escaped s ^ "\"") expected actual

(* Unwrap a syscall result, tagging failures with the operation name. *)
let req what = function
  | Ok v -> Ok v
  | Error e -> Error (Printf.sprintf "%s failed: %s" what (Errno.to_string e))

let expect_errno ~what expected = function
  | Error e when e = expected -> Ok ()
  | Error e ->
      Error
        (Printf.sprintf "%s: expected %s, got %s" what (Errno.to_string expected)
           (Errno.to_string e))
  | Ok _ -> Error (Printf.sprintf "%s: expected %s, but it succeeded" what (Errno.to_string expected))

(* --- file helpers ----------------------------------------------------------- *)

let write_file env proc path ?(mode = 0o644) data =
  let* fd =
    req ("open " ^ path)
      (Kernel.open_ env.k proc path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode)
  in
  let* _ = req "write" (Kernel.write env.k proc fd data) in
  req "close" (Kernel.close env.k proc fd)

let read_file env proc path = req ("read " ^ path) (Kernel.read_whole env.k proc path)

(* --- environments ------------------------------------------------------------ *)

type setup = {
  su_env_root : string; (* directory the suite scratches under *)
  su_kernel : Kernel.t;
  su_root : Proc.t;
  su_user : Proc.t;
  su_user2 : Proc.t;
  su_session : Session.t option; (* present when testing CntrFS *)
}

let ok = Errno.ok_exn

(* A minimal world: tmpfs root with a backing directory for the fs under
   test, plus the probe binary used by the exec test. *)
let make_world () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"tmpfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter (fun d -> ok (Kernel.mkdir k init d ~mode:0o755)) [ "/back"; "/mnt" ];
  ok (Kernel.chmod k init "/back" 0o777);
  Kernel.register_program k "xfs-probe" (fun _ _ _ -> 0);
  (k, init)

let make_procs k init =
  let user = Kernel.fork k init in
  user.Proc.comm <- "fsqa-user";
  user.Proc.cred.Proc.uid <- 1000;
  user.Proc.cred.Proc.gid <- 1000;
  user.Proc.cred.Proc.groups <- [ 1000 ];
  user.Proc.cred.Proc.caps <- Caps.Set.empty;
  let user2 = Kernel.fork k init in
  user2.Proc.comm <- "fsqa-user2";
  user2.Proc.cred.Proc.uid <- 1001;
  user2.Proc.cred.Proc.gid <- 1001;
  user2.Proc.cred.Proc.groups <- [ 1001 ];
  user2.Proc.cred.Proc.caps <- Caps.Set.empty;
  (user, user2)

(* Native: tests run directly on the tmpfs-backed directory. *)
let setup_native () =
  let k, init = make_world () in
  let user, user2 = make_procs k init in
  { su_env_root = "/back"; su_kernel = k; su_root = init; su_user = user; su_user2 = user2; su_session = None }

(* CntrFS: the same directory served through the FUSE stack, mounted at
   /mnt (the paper: "we mounted CNTRFS on top of tmpfs"). *)
let setup_cntrfs ?(opts = Repro_fuse.Opts.cntr_default) () =
  let k, init = make_world () in
  let server_proc = Kernel.fork k init in
  server_proc.Proc.comm <- "cntrfs";
  let budget = Mem_budget.create ~limit_bytes:(256 * 1024 * 1024) in
  let session = Session.create ~kernel:k ~server_proc ~root_path:"/back" ~opts ~budget () in
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  let user, user2 = make_procs k init in
  { su_env_root = "/mnt"; su_kernel = k; su_root = init; su_user = user; su_user2 = user2; su_session = Some session }

(* --- runner -------------------------------------------------------------------- *)

let run_one setup test =
  let base = Printf.sprintf "%s/t%03d" setup.su_env_root test.t_id in
  let env =
    { k = setup.su_kernel; root = setup.su_root; user = setup.su_user; user2 = setup.su_user2; base }
  in
  let scratch =
    let* () = Kernel.mkdir setup.su_kernel setup.su_root base ~mode:0o777 in
    (* umask-proof: the suite needs a world-writable scratch dir *)
    Kernel.chmod setup.su_kernel setup.su_root base 0o777
  in
  match scratch with
  | Error e -> { r_test = test; r_outcome = Fail ("scratch dir: " ^ Errno.to_string e) }
  | Ok () -> (
      match test.t_run env with
      | Ok () -> { r_test = test; r_outcome = Pass }
      | Error msg -> { r_test = test; r_outcome = Fail msg }
      | exception Errno.Error e ->
          { r_test = test; r_outcome = Fail ("uncaught errno: " ^ Errno.to_string e) })

let run_suite setup tests =
  let rows = List.map (run_one setup) tests in
  let failed =
    List.filter_map
      (fun r -> match r.r_outcome with Fail m -> Some (r.r_test.t_id, m) | Pass -> None)
      rows
  in
  {
    s_rows = rows;
    s_total = List.length rows;
    s_passed = List.length rows - List.length failed;
    s_failed = failed;
  }

let pp_summary ppf s =
  Fmt.pf ppf "passed %d out of %d (%.2f%%)@." s.s_passed s.s_total
    (100. *. float_of_int s.s_passed /. float_of_int s.s_total);
  List.iter (fun (id, msg) -> Fmt.pf ppf "  generic/%03d FAILED: %s@." id msg) s.s_failed
