(* generic group: data I/O, offsets, truncation, sparseness, timestamps,
   readdir. *)

open Repro_util
open Repro_vfs
open Repro_os
open Harness

let p env rel = env.base ^ "/" ^ rel

let t id groups desc run = { t_id = id; t_groups = groups; t_desc = desc; t_run = run }

let quick = [ "auto"; "quick" ]

(* deterministic pseudo-random block for integrity checks *)
let pattern seed len =
  let rng = Rng.create ~seed in
  String.init len (fun _ -> Char.chr (32 + Rng.int rng 90))

let tests = [
  t 30 quick "write/read round trip" (fun env ->
      let data = pattern 1 10_000 in
      let* () = write_file env env.root (p env "f") data in
      let* back = read_file env env.root (p env "f") in
      check_str ~what:"roundtrip" data back);

  t 31 quick "pread/pwrite at offsets" (fun env ->
      let* () = write_file env env.root (p env "f") (String.make 100 '.') in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDWR ] ~mode:0) in
      let* _ = req "pwrite" (Kernel.pwrite env.k env.root fd ~off:40 "MID") in
      let* s = req "pread" (Kernel.pread env.k env.root fd ~off:39 ~len:5) in
      let* () = check_str ~what:"window" ".MID." s in
      req "close" (Kernel.close env.k env.root fd));

  t 32 quick "O_APPEND always writes at EOF" (fun env ->
      let* () = write_file env env.root (p env "log") "a" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "log") [ Types.O_WRONLY; Types.O_APPEND ] ~mode:0) in
      let* _ = req "write b" (Kernel.write env.k env.root fd "b") in
      let* _ = req "write c" (Kernel.write env.k env.root fd "c") in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* data = read_file env env.root (p env "log") in
      check_str ~what:"appended" "abc" data);

  t 33 quick "sparse file: holes read as zeros" (fun env ->
      let* fd =
        req "open" (Kernel.open_ env.k env.root (p env "sparse") [ Types.O_CREAT; Types.O_RDWR ] ~mode:0o644)
      in
      let* _ = req "pwrite far" (Kernel.pwrite env.k env.root fd ~off:100_000 "END") in
      let* st = req "fstat" (Kernel.fstat env.k env.root fd) in
      let* () = check_int ~what:"size" 100_003 st.Types.st_size in
      let* hole = req "pread hole" (Kernel.pread env.k env.root fd ~off:50_000 ~len:4) in
      let* () = check_str ~what:"hole" (String.make 4 '\000') hole in
      req "close" (Kernel.close env.k env.root fd));

  t 34 quick "truncate shrinks and zero-extends" (fun env ->
      let* () = write_file env env.root (p env "f") (String.make 100 'a') in
      let* () = req "truncate 10" (Kernel.truncate env.k env.root (p env "f") 10) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      let* () = check_int ~what:"shrunk" 10 st.Types.st_size in
      let* () = req "truncate 20" (Kernel.truncate env.k env.root (p env "f") 20) in
      let* data = read_file env env.root (p env "f") in
      check_str ~what:"zero extended" (String.make 10 'a' ^ String.make 10 '\000') data);

  t 35 quick "O_TRUNC empties the file" (fun env ->
      let* () = write_file env env.root (p env "f") "data" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_WRONLY; Types.O_TRUNC ] ~mode:0) in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check_int ~what:"size" 0 st.Types.st_size);

  t 36 [ "auto" ] "2 MiB integrity" (fun env ->
      let data = pattern 2 (2 * 1024 * 1024) in
      let* () = write_file env env.root (p env "big") data in
      let* back = read_file env env.root (p env "big") in
      check (data = back) "2MiB content mismatch");

  t 37 quick "many small sequential writes" (fun env ->
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
      let rec go i =
        if i = 200 then Ok ()
        else
          let* _ = req "write" (Kernel.write env.k env.root fd (Printf.sprintf "%04d" i)) in
          go (i + 1)
      in
      let* () = go 0 in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* data = read_file env env.root (p env "f") in
      let* () = check_int ~what:"length" 800 (String.length data) in
      check_str ~what:"tail" "0199" (String.sub data 796 4));

  t 38 quick "read at EOF returns empty" (fun env ->
      let* () = write_file env env.root (p env "f") "xy" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* s = req "pread" (Kernel.pread env.k env.root fd ~off:2 ~len:10) in
      let* () = check_str ~what:"eof" "" s in
      req "close" (Kernel.close env.k env.root fd));

  t 39 quick "lseek SEEK_SET/CUR/END" (fun env ->
      let* () = write_file env env.root (p env "f") "0123456789" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* pos = req "seek end" (Kernel.lseek env.k env.root fd (Kernel.SEEK_END 0)) in
      let* () = check_int ~what:"end" 10 pos in
      let* pos = req "seek cur" (Kernel.lseek env.k env.root fd (Kernel.SEEK_CUR (-4))) in
      let* () = check_int ~what:"cur" 6 pos in
      let* s = req "read" (Kernel.read env.k env.root fd ~len:10) in
      let* () = check_str ~what:"tail" "6789" s in
      let* () = expect_errno ~what:"negative seek" Errno.EINVAL (Kernel.lseek env.k env.root fd (Kernel.SEEK_SET (-1))) in
      req "close" (Kernel.close env.k env.root fd));

  t 40 quick "EBADF after close" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* () = expect_errno ~what:"read" Errno.EBADF (Kernel.read env.k env.root fd ~len:1) in
      expect_errno ~what:"double close" Errno.EBADF (Kernel.close env.k env.root fd));

  t 41 quick "write on O_RDONLY fd fails" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* () = expect_errno ~what:"write" Errno.EBADF (Kernel.write env.k env.root fd "y") in
      req "close" (Kernel.close env.k env.root fd));

  t 42 quick "read on O_WRONLY fd fails" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_WRONLY ] ~mode:0) in
      let* () = expect_errno ~what:"read" Errno.EBADF (Kernel.read env.k env.root fd ~len:1) in
      req "close" (Kernel.close env.k env.root fd));

  (* --- timestamps ---------------------------------------------------------- *)

  t 43 quick "write updates mtime and size" (fun env ->
      let* () = write_file env env.root (p env "f") "v1" in
      let* st0 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      (* advance virtual time so timestamps can differ *)
      Clock.consume_int env.k.Kernel.clock 1_000_000;
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_WRONLY; Types.O_APPEND ] ~mode:0) in
      let* _ = req "write" (Kernel.write env.k env.root fd "-more") in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* st1 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      let* () = check (st1.Types.st_mtime > st0.Types.st_mtime) "mtime not updated" in
      check_int ~what:"size" 7 st1.Types.st_size);

  t 44 quick "chmod updates ctime" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* st0 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      Clock.consume_int env.k.Kernel.clock 1_000_000;
      let* () = req "chmod" (Kernel.chmod env.k env.root (p env "f") 0o600) in
      let* st1 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check (st1.Types.st_ctime > st0.Types.st_ctime) "ctime not updated");

  t 45 quick "utimens sets explicit times" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* () =
        req "utimens"
          (Kernel.utimens env.k env.root (p env "f") ~atime:(Some 12345L) ~mtime:(Some 67890L))
      in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      let* () = check (st.Types.st_atime = 12345L) "atime" in
      check (st.Types.st_mtime = 67890L) "mtime");

  t 46 quick "link updates ctime of target" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      let* st0 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      Clock.consume_int env.k.Kernel.clock 1_000_000;
      let* () = req "link" (Kernel.link env.k env.root ~target:(p env "f") ~linkpath:(p env "l")) in
      let* st1 = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check (st1.Types.st_ctime > st0.Types.st_ctime) "ctime not updated by link");

  (* --- readdir ---------------------------------------------------------------- *)

  t 47 quick "readdir lists entries plus dot entries" (fun env ->
      let* () = write_file env env.root (p env "a") "1" in
      let* () = write_file env env.root (p env "b") "2" in
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "c") ~mode:0o755) in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      let names = List.map (fun e -> e.Types.d_name) entries in
      let* () = check (List.mem "." names && List.mem ".." names) "dot entries" in
      let* () = check (List.mem "a" names && List.mem "b" names && List.mem "c" names) "entries" in
      check_int ~what:"count" 5 (List.length names));

  t 48 quick "readdir reflects unlink" (fun env ->
      let* () = write_file env env.root (p env "gone") "x" in
      let* () = req "unlink" (Kernel.unlink env.k env.root (p env "gone")) in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      check (not (List.exists (fun e -> e.Types.d_name = "gone") entries)) "stale entry");

  t 49 [ "auto" ] "readdir of 300 entries" (fun env ->
      let rec mk i =
        if i = 300 then Ok ()
        else
          let* () = write_file env env.root (p env (Printf.sprintf "f%03d" i)) "" in
          mk (i + 1)
      in
      let* () = mk 0 in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      check_int ~what:"count" 302 (List.length entries));

  t 50 quick "readdir of a file is ENOTDIR" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"readdir" Errno.ENOTDIR (Kernel.readdir env.k env.root (p env "f")));

  t 51 quick "rename is visible in readdir" (fun env ->
      let* () = write_file env env.root (p env "old") "x" in
      let* () = req "rename" (Kernel.rename env.k env.root ~src:(p env "old") ~dst:(p env "new")) in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      let names = List.map (fun e -> e.Types.d_name) entries in
      let* () = check (List.mem "new" names) "new name" in
      check (not (List.mem "old" names)) "old name gone");

  t 52 quick "dirent kinds are reported" (fun env ->
      let* () = write_file env env.root (p env "reg") "x" in
      let* () = req "mkdir" (Kernel.mkdir env.k env.root (p env "dir") ~mode:0o755) in
      let* () = req "symlink" (Kernel.symlink env.k env.root ~target:"reg" ~linkpath:(p env "lnk")) in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      let kind name =
        match List.find_opt (fun e -> e.Types.d_name = name) entries with
        | Some e -> Some e.Types.d_kind
        | None -> None
      in
      let* () = check (kind "reg" = Some Types.Reg) "reg kind" in
      let* () = check (kind "dir" = Some Types.Dir) "dir kind" in
      check (kind "lnk" = Some Types.Symlink) "symlink kind");

  t 53 quick "unlinked-but-open file remains readable" (fun env ->
      let* () = write_file env env.root (p env "orphan") "still-here" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "orphan") [ Types.O_RDONLY ] ~mode:0) in
      let* () = req "unlink" (Kernel.unlink env.k env.root (p env "orphan")) in
      let* data = req "read" (Kernel.read env.k env.root fd ~len:100) in
      let* () = check_str ~what:"orphan data" "still-here" data in
      req "close" (Kernel.close env.k env.root fd));

  t 54 quick "dup shares the file offset" (fun env ->
      let* () = write_file env env.root (p env "f") "abcdef" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* fd2 = req "dup" (Kernel.dup env.k env.root fd) in
      let* a = req "read fd" (Kernel.read env.k env.root fd ~len:2) in
      let* b = req "read dup" (Kernel.read env.k env.root fd2 ~len:2) in
      let* () = check_str ~what:"first" "ab" a in
      let* () = check_str ~what:"second continues" "cd" b in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      req "close dup" (Kernel.close env.k env.root fd2));

  t 55 quick "independent opens have independent offsets" (fun env ->
      let* () = write_file env env.root (p env "f") "abcdef" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* fd2 = req "open2" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY ] ~mode:0) in
      let* a = req "read fd" (Kernel.read env.k env.root fd ~len:3) in
      let* b = req "read fd2" (Kernel.read env.k env.root fd2 ~len:3) in
      let* () = check_str ~what:"first" "abc" a in
      let* () = check_str ~what:"second from zero" "abc" b in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      req "close2" (Kernel.close env.k env.root fd2));
]
