(** The xfstests-style regression harness (§5.1).  A test is a predicate
    over a scratch directory on the filesystem under test; the same
    94-test generic suite runs against native tmpfs and against
    CntrFS-on-tmpfs (the paper's methodology). *)

open Repro_os
open Repro_cntrfs

type env = {
  k : Kernel.t;
  root : Proc.t;  (** privileged *)
  user : Proc.t;  (** uid 1000, no capabilities *)
  user2 : Proc.t;  (** uid 1001, no capabilities *)
  base : string;  (** per-test scratch directory, mode 0777 *)
}

type test = {
  t_id : int;  (** xfstests-style "generic/NNN" number *)
  t_groups : string list;  (** auto, quick, aio, prealloc, ioctl, dangerous *)
  t_desc : string;
  t_run : env -> (unit, string) result;
}

type outcome = Pass | Fail of string

type row = { r_test : test; r_outcome : outcome }

type summary = {
  s_rows : row list;
  s_total : int;
  s_passed : int;
  s_failed : (int * string) list;
}

(** {1 Assertion helpers for writing tests} *)

val ( let* ) : ('a, 'b) result -> ('a -> ('c, 'b) result) -> ('c, 'b) result
val check : bool -> string -> (unit, string) result
val check_int : what:string -> int -> int -> (unit, string) result
val check_str : what:string -> string -> string -> (unit, string) result

(** Unwrap a syscall result, tagging failures with the operation name. *)
val req : string -> ('a, Repro_util.Errno.t) result -> ('a, string) result

val expect_errno :
  what:string -> Repro_util.Errno.t -> ('a, Repro_util.Errno.t) result -> (unit, string) result

val write_file : env -> Proc.t -> string -> ?mode:int -> string -> (unit, string) result
val read_file : env -> Proc.t -> string -> (string, string) result

(** {1 Setups and the runner} *)

type setup = {
  su_env_root : string;
  su_kernel : Kernel.t;
  su_root : Proc.t;
  su_user : Proc.t;
  su_user2 : Proc.t;
  su_session : Session.t option;  (** present when testing CntrFS *)
}

(** Run directly on a tmpfs-backed directory. *)
val setup_native : unit -> setup

(** The same directory served through the full FUSE stack. *)
val setup_cntrfs : ?opts:Repro_fuse.Opts.t -> unit -> setup

val run_one : setup -> test -> row
val run_suite : setup -> test list -> summary
val pp_summary : Format.formatter -> summary -> unit
