(* generic group: statfs, prealloc, special nodes, stress, and the four
   tests the paper reports failing through CntrFS (§5.1):
   generic/228 (RLIMIT_FSIZE), generic/375 (SETGID + ACL chmod),
   generic/391 (O_DIRECT), generic/426 (exportable handles). *)

open Repro_util
open Repro_vfs
open Repro_os
open Harness

let p env rel = env.base ^ "/" ^ rel

let t id groups desc run = { t_id = id; t_groups = groups; t_desc = desc; t_run = run }

let quick = [ "auto"; "quick" ]

let tests = [
  t 100 quick "statfs sanity" (fun env ->
      let* s = req "statfs" (Kernel.statfs env.k env.root env.base) in
      let* () = check (s.Types.f_bsize > 0) "bsize" in
      let* () = check (s.Types.f_blocks > 0) "blocks" in
      let* files0 = Ok s.Types.f_files in
      let* () = write_file env env.root (p env "f") "x" in
      let* s1 = req "statfs" (Kernel.statfs env.k env.root env.base) in
      check (s1.Types.f_files > files0) "file count grows");

  t 101 [ "auto"; "quick"; "prealloc" ] "fallocate extends the file" (fun env ->
      let* fd =
        req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_CREAT; Types.O_RDWR ] ~mode:0o644)
      in
      let* () = req "fallocate" (Kernel.fallocate env.k env.root fd ~off:0 ~len:65536) in
      let* st = req "fstat" (Kernel.fstat env.k env.root fd) in
      let* () = check_int ~what:"size" 65536 st.Types.st_size in
      req "close" (Kernel.close env.k env.root fd));

  t 102 [ "auto"; "quick"; "prealloc" ] "fallocate preserves existing data" (fun env ->
      let* () = write_file env env.root (p env "f") "keepme" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDWR ] ~mode:0) in
      let* () = req "fallocate" (Kernel.fallocate env.k env.root fd ~off:0 ~len:8192) in
      let* s = req "pread" (Kernel.pread env.k env.root fd ~off:0 ~len:6) in
      let* () = check_str ~what:"data" "keepme" s in
      req "close" (Kernel.close env.k env.root fd));

  t 103 quick "fsync succeeds and data persists" (fun env ->
      let* fd =
        req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* _ = req "write" (Kernel.write env.k env.root fd "durable") in
      let* () = req "fsync" (Kernel.fsync env.k env.root fd) in
      let* () = req "close" (Kernel.close env.k env.root fd) in
      let* data = read_file env env.root (p env "f") in
      check_str ~what:"data" "durable" data);

  t 104 quick "O_NOFOLLOW refuses a symlink" (fun env ->
      let* () = write_file env env.root (p env "real") "x" in
      let* () = req "symlink" (Kernel.symlink env.k env.root ~target:"real" ~linkpath:(p env "lnk")) in
      let* () =
        expect_errno ~what:"open nofollow" Errno.ELOOP
          (Kernel.open_ env.k env.root (p env "lnk") [ Types.O_RDONLY; Types.O_NOFOLLOW ] ~mode:0)
      in
      let* fd = req "open direct" (Kernel.open_ env.k env.root (p env "real") [ Types.O_RDONLY; Types.O_NOFOLLOW ] ~mode:0) in
      req "close" (Kernel.close env.k env.root fd));

  t 105 quick "O_DIRECTORY on a file is ENOTDIR" (fun env ->
      let* () = write_file env env.root (p env "f") "x" in
      expect_errno ~what:"open" Errno.ENOTDIR
        (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY; Types.O_DIRECTORY ] ~mode:0));

  t 106 quick "mknod fifo" (fun env ->
      let* () = req "mknod" (Kernel.mknod env.k env.root (p env "pipe") ~kind:Types.Fifo ~mode:0o644) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "pipe")) in
      check (st.Types.st_kind = Types.Fifo) "fifo kind");

  t 107 quick "mknod socket node" (fun env ->
      let* () = req "mknod" (Kernel.mknod env.k env.root (p env "sock") ~kind:Types.Sock ~mode:0o755) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "sock")) in
      check (st.Types.st_kind = Types.Sock) "sock kind");

  t 108 [ "auto" ] "create/delete churn" (fun env ->
      let rec churn i =
        if i = 200 then Ok ()
        else
          let name = p env (Printf.sprintf "c%d" (i mod 10)) in
          let* () = write_file env env.root name (string_of_int i) in
          let* () = req "unlink" (Kernel.unlink env.k env.root name) in
          churn (i + 1)
      in
      let* () = churn 0 in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      check_int ~what:"empty after churn" 2 (List.length entries));

  t 109 [ "auto" ] "rename churn keeps exactly one file" (fun env ->
      let* () = write_file env env.root (p env "f0") "ball" in
      let rec churn i =
        if i = 100 then Ok ()
        else
          let* () =
            req "rename"
              (Kernel.rename env.k env.root
                 ~src:(p env (Printf.sprintf "f%d" i))
                 ~dst:(p env (Printf.sprintf "f%d" (i + 1))))
          in
          churn (i + 1)
      in
      let* () = churn 0 in
      let* data = read_file env env.root (p env "f100") in
      let* () = check_str ~what:"content" "ball" data in
      let* entries = req "readdir" (Kernel.readdir env.k env.root env.base) in
      check_int ~what:"one file" 3 (List.length entries));

  t 110 [ "auto"; "dangerous" ] "random write fuzz vs reference model" (fun env ->
      let rng = Rng.create ~seed:0xf52 in
      let model = Bytes.make 65536 '\000' in
      let model_size = ref 0 in
      let* fd =
        req "open" (Kernel.open_ env.k env.root (p env "fuzz") [ Types.O_CREAT; Types.O_RDWR ] ~mode:0o644)
      in
      let rec go i =
        if i = 100 then Ok ()
        else begin
          let off = Rng.int rng 60000 in
          let len = 1 + Rng.int rng 4000 in
          let data = Bytes.unsafe_to_string (Rng.bytes rng len) in
          let* _ = req "pwrite" (Kernel.pwrite env.k env.root fd ~off data) in
          Bytes.blit_string data 0 model off len;
          model_size := max !model_size (off + len);
          (* verify a random window *)
          let roff = Rng.int rng (max 1 !model_size) in
          let rlen = min 512 (!model_size - roff) in
          let* s = req "pread" (Kernel.pread env.k env.root fd ~off:roff ~len:rlen) in
          let expected = Bytes.sub_string model roff rlen in
          let* () = check (s = expected) (Printf.sprintf "window mismatch at %d (iter %d)" roff i) in
          go (i + 1)
        end
      in
      let* () = go 0 in
      let* st = req "fstat" (Kernel.fstat env.k env.root fd) in
      let* () = check_int ~what:"final size" !model_size st.Types.st_size in
      req "close" (Kernel.close env.k env.root fd));

  t 111 [ "auto" ] "recursive tree copy preserves content" (fun env ->
      let rng = Rng.create ~seed:0x7ee in
      (* build a small tree *)
      let files = ref [] in
      let* () = req "mkdir src" (Kernel.mkdir env.k env.root (p env "src") ~mode:0o755) in
      let rec build dir depth =
        if depth = 0 then Ok ()
        else begin
          let* () =
            List.fold_left
              (fun acc i ->
                let* () = acc in
                let f = dir ^ "/f" ^ string_of_int i in
                let data = Bytes.unsafe_to_string (Rng.bytes rng (100 + Rng.int rng 400)) in
                files := (f, data) :: !files;
                write_file env env.root f data)
              (Ok ()) [ 1; 2; 3 ]
          in
          let sub = dir ^ "/sub" in
          let* () = req "mkdir" (Kernel.mkdir env.k env.root sub ~mode:0o755) in
          build sub (depth - 1)
        end
      in
      let* () = build (p env "src") 3 in
      (* copy it *)
      let rec copy src dst =
        let* () = req "mkdir dst" (Kernel.mkdir env.k env.root dst ~mode:0o755) in
        let* entries = req "readdir" (Kernel.readdir env.k env.root src) in
        List.fold_left
          (fun acc e ->
            let* () = acc in
            let name = e.Types.d_name in
            if name = "." || name = ".." then Ok ()
            else
              match e.Types.d_kind with
              | Types.Dir -> copy (src ^ "/" ^ name) (dst ^ "/" ^ name)
              | _ ->
                  let* data = read_file env env.root (src ^ "/" ^ name) in
                  write_file env env.root (dst ^ "/" ^ name) data)
          (Ok ()) entries
      in
      let* () = copy (p env "src") (p env "dst") in
      (* verify *)
      List.fold_left
        (fun acc (f, data) ->
          let* () = acc in
          match Pathx.strip_prefix ~dir:(p env "src") f with
          | Some rel ->
              let* copied = read_file env env.root (p env "dst" ^ "/" ^ rel) in
              check (copied = data) ("copy mismatch: " ^ rel)
          | None -> Ok ())
        (Ok ()) !files);

  t 112 [ "auto" ] "hardlink farm keeps nlink exact" (fun env ->
      let* () = write_file env env.root (p env "orig") "x" in
      let rec link i =
        if i = 50 then Ok ()
        else
          let* () =
            req "link" (Kernel.link env.k env.root ~target:(p env "orig") ~linkpath:(p env ("l" ^ string_of_int i)))
          in
          link (i + 1)
      in
      let* () = link 0 in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "orig")) in
      let* () = check_int ~what:"nlink" 51 st.Types.st_nlink in
      let rec unlink i =
        if i = 50 then Ok ()
        else
          let* () = req "unlink" (Kernel.unlink env.k env.root (p env ("l" ^ string_of_int i))) in
          unlink (i + 1)
      in
      let* () = unlink 0 in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "orig")) in
      check_int ~what:"nlink back to 1" 1 st.Types.st_nlink);

  t 113 [ "auto"; "aio" ] "interleaved writers via two fds" (fun env ->
      let* fd1 =
        req "open1" (Kernel.open_ env.k env.root (p env "f") [ Types.O_CREAT; Types.O_RDWR ] ~mode:0o644)
      in
      let* fd2 = req "open2" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDWR ] ~mode:0) in
      let rec interleave i =
        if i = 64 then Ok ()
        else
          let* _ = req "pwrite1" (Kernel.pwrite env.k env.root fd1 ~off:(i * 2) "A") in
          let* _ = req "pwrite2" (Kernel.pwrite env.k env.root fd2 ~off:((i * 2) + 1) "B") in
          interleave (i + 1)
      in
      let* () = interleave 0 in
      let* () = req "close1" (Kernel.close env.k env.root fd1) in
      let* () = req "close2" (Kernel.close env.k env.root fd2) in
      let* data = read_file env env.root (p env "f") in
      let expected = String.concat "" (List.init 64 (fun _ -> "AB")) in
      check_str ~what:"interleaved" expected data);

  t 114 [ "auto"; "aio" ] "read-modify-write across page boundaries" (fun env ->
      let page = 4096 in
      let* () = write_file env env.root (p env "f") (String.make (3 * page) 'a') in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDWR ] ~mode:0) in
      (* straddle the first/second page boundary *)
      let* _ = req "pwrite" (Kernel.pwrite env.k env.root fd ~off:(page - 2) "XXXX") in
      let* s = req "pread" (Kernel.pread env.k env.root fd ~off:(page - 3) ~len:6) in
      let* () = check_str ~what:"straddle" "aXXXXa" s in
      let* st = req "fstat" (Kernel.fstat env.k env.root fd) in
      let* () = check_int ~what:"size unchanged" (3 * page) st.Types.st_size in
      req "close" (Kernel.close env.k env.root fd));

  t 115 [ "auto"; "ioctl" ] "ftruncate via open fd" (fun env ->
      let* () = write_file env env.root (p env "f") "0123456789" in
      let* fd = req "open" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDWR ] ~mode:0) in
      let* () = req "ftruncate" (Kernel.ftruncate env.k env.root fd 4) in
      let* st = req "fstat" (Kernel.fstat env.k env.root fd) in
      let* () = check_int ~what:"size" 4 st.Types.st_size in
      let* data = req "pread" (Kernel.pread env.k env.root fd ~off:0 ~len:10) in
      let* () = check_str ~what:"content" "0123" data in
      req "close" (Kernel.close env.k env.root fd));

  (* --- the four paper failures -------------------------------------------- *)

  t 228 [ "auto"; "quick" ] "RLIMIT_FSIZE is enforced on write" (fun env ->
      (* xfstests generic/228: a process with a file-size limit must get
         EFBIG when writing past it.  CntrFS replays the write in the
         server, which has no such limit — the test fails there (§5.1). *)
      let limited = Kernel.fork env.k env.user in
      Kernel.set_rlimit_fsize env.k limited (Some 1024);
      let* fd =
        req "open" (Kernel.open_ env.k limited (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* _ = req "write within" (Kernel.write env.k limited fd (String.make 1024 'a')) in
      let* () =
        expect_errno ~what:"write past limit" Errno.EFBIG
          (Kernel.write env.k limited fd "overflow")
      in
      let* () = req "close" (Kernel.close env.k limited fd) in
      Kernel.exit env.k limited 0;
      Ok ());

  t 375 [ "auto"; "quick" ] "chmod clears setgid for non-group-member with ACL" (fun env ->
      (* xfstests generic/375: with a POSIX ACL present, chmod by an owner
         who is not a member of the owning group must clear S_ISGID.
         CntrFS delegates ACLs via setfsuid and the privileged server keeps
         the bit — the test fails there (§5.1). *)
      let* fd =
        req "user create"
          (Kernel.open_ env.k env.user (p env "f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644)
      in
      let* () = req "close" (Kernel.close env.k env.user fd) in
      (* owning group 7000: the owner (uid 1000) is not a member *)
      let* () = req "chgrp" (Kernel.chown env.k env.root (p env "f") ~uid:None ~gid:(Some 7000)) in
      let* () =
        req "set acl"
          (Kernel.setxattr env.k env.root (p env "f") "system.posix_acl_access"
             "u::rw-,g::r-x,m::r-x,o::r--")
      in
      let* () = req "chmod 2755" (Kernel.chmod env.k env.user (p env "f") 0o2755) in
      let* st = req "stat" (Kernel.stat env.k env.root (p env "f")) in
      check (st.Types.st_mode land Types.s_isgid = 0)
        "setgid bit was not cleared by chmod");

  t 391 [ "auto"; "quick" ] "O_DIRECT read returns written data" (fun env ->
      (* xfstests generic/391: direct I/O must work.  FUSE makes mmap and
         direct I/O mutually exclusive and CNTR chose mmap, so the open
         fails through CntrFS (§5.1). *)
      let* () = write_file env env.root (p env "f") (String.make 8192 'd') in
      let* fd =
        req "open O_DIRECT" (Kernel.open_ env.k env.root (p env "f") [ Types.O_RDONLY; Types.O_DIRECT ] ~mode:0)
      in
      let* s = req "pread" (Kernel.pread env.k env.root fd ~off:0 ~len:4096) in
      let* () = check_int ~what:"direct read size" 4096 (String.length s) in
      req "close" (Kernel.close env.k env.root fd));

  t 426 [ "auto"; "quick" ] "name_to_handle_at round trip" (fun env ->
      (* xfstests generic/426: file handles obtained by name_to_handle_at
         must reopen the file.  CntrFS inodes are ephemeral and not
         exportable, so the call fails there (§5.1). *)
      let* () = write_file env env.root (p env "f") "handled" in
      let* handle = req "name_to_handle_at" (Kernel.name_to_handle_at env.k env.root (p env "f")) in
      let* fd = req "open_by_handle_at" (Kernel.open_by_handle_at env.k env.root handle) in
      let* data = req "read" (Kernel.read env.k env.root fd ~len:100) in
      let* () = check_str ~what:"content via handle" "handled" data in
      req "close" (Kernel.close env.k env.root fd));
]
