(* The full generic suite: 94 tests, matching the paper's count (§5.1).
   Run with [Harness.run_suite (Harness.setup_native ())] or
   [Harness.setup_cntrfs ()]. *)

let all : Harness.test list =
  Tests_namei.tests @ Tests_io.tests @ Tests_perm.tests @ Tests_misc.tests

let count = List.length all

(* The four tests the paper reports failing through CntrFS. *)
let expected_cntrfs_failures = [ 228; 375; 391; 426 ]

let by_group group =
  List.filter (fun t -> List.mem group t.Harness.t_groups) all
