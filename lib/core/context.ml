(* Step #1 (§3.2.1): obtain the container's execution context by reading
   the /proc filesystem of its main process — namespaces, environment,
   capabilities, cgroup, LSM profile, uid/gid maps.  Everything is parsed
   from the procfs *text*, exactly as the real CNTR does, rather than
   peeking at kernel structures. *)

open Repro_os

type t = {
  cx_pid : int;
  cx_uid : int;
  cx_gid : int;
  cx_caps : Caps.Set.t;
  cx_env : (string * string) list;
  cx_cgroup : string;
  cx_lsm_profile : string option;
  cx_ns_ids : (Namespace.kind * string) list; (* textual ns tags *)
  cx_uid_map : string;
  cx_gid_map : string;
}

let ( let* ) = Result.bind

let parse_status_field status field =
  String.split_on_char '\n' status
  |> List.find_map (fun line ->
         let prefix = field ^ ":" in
         if
           String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
         then
           Some (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
         else None)

let parse_environ text =
  String.split_on_char '\000' text
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i -> Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
         | None -> None)

(* Read and parse /proc/<pid>/* as process [proc]. *)
let inspect kernel proc ~pid =
  let read rel = Kernel.read_whole kernel proc (Printf.sprintf "/proc/%d/%s" pid rel) in
  let* status = read "status" in
  let* environ = read "environ" in
  let* cgroup_text = read "cgroup" in
  let* lsm = read "attr/current" in
  let* uid_map = read "uid_map" in
  let* gid_map = read "gid_map" in
  let ns_ids =
    List.filter_map
      (fun kind ->
        match
          Kernel.readlink kernel proc
            (Printf.sprintf "/proc/%d/ns/%s" pid (Namespace.kind_to_string kind))
        with
        | Ok tag -> Some (kind, tag)
        | Error _ -> None)
      Namespace.all_kinds
  in
  let uid =
    match parse_status_field status "Uid" with
    | Some s -> (
        match String.split_on_char '\t' s with
        | u :: _ -> Option.value ~default:0 (int_of_string_opt u)
        | [] -> 0)
    | None -> 0
  in
  let gid =
    match parse_status_field status "Gid" with
    | Some s -> (
        match String.split_on_char '\t' s with
        | g :: _ -> Option.value ~default:0 (int_of_string_opt g)
        | [] -> 0)
    | None -> 0
  in
  let caps =
    match parse_status_field status "CapEff" with
    | Some hex -> (try Caps.Set.of_hex hex with _ -> Caps.Set.empty)
    | None -> Caps.Set.empty
  in
  let cgroup =
    match String.split_on_char '\n' cgroup_text with
    | first :: _ -> (
        match String.index_opt first ':' with
        | Some _ -> (
            (* "0::<path>" *)
            match String.split_on_char ':' first with
            | [ _; _; path ] -> path
            | _ -> "/")
        | None -> "/")
    | [] -> "/"
  in
  let lsm_profile =
    let trimmed = String.trim lsm in
    if trimmed = "unconfined" || trimmed = "" then None else Some trimmed
  in
  Ok
    {
      cx_pid = pid;
      cx_uid = uid;
      cx_gid = gid;
      cx_caps = caps;
      cx_env = parse_environ environ;
      cx_cgroup = cgroup;
      cx_lsm_profile = lsm_profile;
      cx_ns_ids = ns_ids;
      cx_uid_map = uid_map;
      cx_gid_map = gid_map;
    }

let pp ppf t =
  Fmt.pf ppf "pid=%d uid=%d gid=%d cgroup=%s lsm=%s caps=%s env=[%s]" t.cx_pid t.cx_uid
    t.cx_gid t.cx_cgroup
    (Option.value ~default:"unconfined" t.cx_lsm_profile)
    (Caps.Set.to_hex t.cx_caps)
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) t.cx_env))
