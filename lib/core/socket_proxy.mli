(** Unix-socket forwarding (§3.2.4).

    Socket files seen through CntrFS carry the FUSE mount's inode identity,
    so the kernel cannot associate them with the live socket on the other
    side and connections fail with [ECONNREFUSED].  The proxy listens at a
    path inside the nested namespace and relays each accepted connection to
    the real socket in the tools namespace with an epoll + splice pump. *)

open Repro_os

type t

(** [forward ~kernel ~front_proc ~back_proc path] starts a listener at
    [path] in [front_proc]'s namespace (the nested one), relaying to
    [?backend_path] (default: the same path) resolved in [back_proc]'s
    namespace (the tools side). *)
val forward :
  kernel:Kernel.t ->
  front_proc:Proc.t ->
  back_proc:Proc.t ->
  ?backend_path:string ->
  string ->
  (t, Repro_util.Errno.t) result

(** One event-loop turn: poll, accept new clients, relay bytes both ways.
    Returns [true] if any work was done. *)
val pump : t -> bool

(** Pump until a turn does no work (bounded). *)
val pump_until_quiet : t -> unit

(** Number of currently bridged connections. *)
val connection_count : t -> int

(** Close the listener and all bridged connections. *)
val close : t -> unit
