(** /dev/fuse: opening the device yields a fresh FUSE connection carried on
    the fd.  CNTR opens the fd before entering the container (step #1) and
    mounts it from inside the nested namespace (step #3). *)

open Repro_os

type Proc.custom_payload += Fuse_conn of Repro_fuse.Conn.t

(** Register the /dev/fuse character device (major 10, minor 229) with the
    kernel; each open creates a fresh {!Repro_fuse.Conn.t}. *)
val install : Kernel.t -> unit

(** Extract the connection carried by an open /dev/fuse fd. *)
val conn_of_fd : Proc.t -> int -> (Repro_fuse.Conn.t, Repro_util.Errno.t) result
