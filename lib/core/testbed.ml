(* The fully-assembled machine CNTR operates on: a [World] (host fs,
   engines, registry with the Top-50 catalogue) plus CNTR's own pieces —
   the toolbox of programs, the /dev/fuse device, and a "fat" debug-tools
   image for container-to-container debugging. *)

open Repro_util
open Repro_image
open Repro_runtime

let debug_tools = [ "gdb"; "strace"; "ps"; "top"; "vi"; "less"; "grep"; "find"; "stat"; "du"; "env"; "which"; "cat"; "ls"; "echo"; "mount"; "id"; "hostname" ]

(* The "fat" image: an Alpine base stuffed with debugging tools.  Its
   entrypoint just parks; CNTR attaches to it only for its filesystem. *)
let debug_image () =
  let tool_entries =
    List.map
      (fun tool ->
        Layer.File
          {
            path = "/usr/bin/" ^ tool;
            mode = 0o755;
            content = Content.Binary { prog = tool; size = Size.kib 256 };
          })
      debug_tools
  in
  let extra =
    [
      Layer.Dir { path = "/var"; mode = 0o755 };
      Layer.Dir { path = "/var/lib"; mode = 0o755 };
      Layer.Dir { path = "/proc"; mode = 0o555 };
      Layer.Dir { path = "/dev"; mode = 0o755 };
      Layer.File { path = "/usr/bin/pause"; mode = 0o755; content = Content.Binary { prog = "pause"; size = Size.kib 8 } };
      (* a gigabyte-class IDE-like payload, the §2.4 host-to-container story *)
      Layer.File { path = "/opt/ide.tar"; mode = 0o644; content = Content.Filler (Size.mib 4) };
    ]
  in
  Image.v ~name:"cntr/debug-tools"
    ~config:
      {
        Image.env = [ ("PATH", "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin") ];
        entrypoint = [ "/usr/bin/pause" ];
        workdir = "/";
        user = 0;
      }
    [ Catalog.alpine_base; Layer.v ~id:"app:cntr-debug" (Layer.Dir { path = "/usr/bin"; mode = 0o755 } :: tool_entries @ extra) ]

type t = World.t

(* Build the world and install everything CNTR needs. *)
let create ?memory_mb ?disk () =
  let world = World.create ?memory_mb ?disk () in
  Toolbox.register_all world.World.kernel;
  Dev_fuse.install world.World.kernel;
  Registry.push world.World.registry (debug_image ());
  world

(* Convenience: attach by name using the world's engines and budget. *)
let attach world ?config name =
  Attach.attach ~kernel:world.World.kernel ~engines:world.World.engines
    ~budget:world.World.budget ?config name

(* Bracketed variant: attach, run [f], always detach. *)
let with_session world ?config name f =
  Attach.with_session ~kernel:world.World.kernel ~engines:world.World.engines
    ~budget:world.World.budget ?config name f
