(** Pseudo-TTY plumbing (§3.2.4): the shell's standard streams are proxied
    through a pty pair so the container never holds the user's real
    terminal file descriptors. *)

open Repro_os

type t

(** Allocate a pty pair and install the slave ends as fds 0/1/2 of [proc].
    The returned value is the master side, wired directly (no plane). *)
val attach : Kernel.t -> Proc.t -> t

(** Same, but the stream rides the forwarding plane: slave and master get
    separate pipe pairs and a {!Repro_proxy.Proxy.add_stream} duplex pump
    moves bytes between them, with the plane's backpressure, fault site
    and metrics. *)
val attach_plane : Repro_proxy.Proxy.t -> Proc.t -> t

(** Drain everything the shell has written to stdout/stderr (driving the
    plane to quiescence first, when one is attached). *)
val read_output : t -> string

(** Queue keyboard input for the shell's stdin; returns bytes accepted.
    With a plane attached, the input is delivered to the shell side before
    returning. *)
val send_input : t -> string -> int

(** Read one chunk of queued input, if any (direct-pair wiring only). *)
val input_line : t -> string option
