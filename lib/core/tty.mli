(** Pseudo-TTY plumbing (§3.2.4): the shell's standard streams are proxied
    through a pty pair so the container never holds the user's real
    terminal file descriptors. *)

open Repro_os

type t

(** Allocate a pty pair and install the slave ends as fds 0/1/2 of [proc].
    The returned value is the master side. *)
val attach : Kernel.t -> Proc.t -> t

(** Drain everything the shell has written to stdout/stderr. *)
val read_output : t -> string

(** Queue keyboard input for the shell's stdin; returns bytes accepted. *)
val send_input : t -> string -> int

(** Read one chunk of queued input (the shell side's view), if any. *)
val input_line : t -> string option
