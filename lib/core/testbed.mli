(** The fully-assembled simulated machine CNTR operates on: a
    {!Repro_runtime.World} plus CNTR's own pieces — the toolbox programs,
    the /dev/fuse device, and a published "fat" debug-tools image. *)

type t = Repro_runtime.World.t

(** Tools baked into the debug image (gdb, strace, ps, ...). *)
val debug_tools : string list

(** The "cntr/debug-tools" fat image: an Alpine base plus the toolbox. *)
val debug_image : unit -> Repro_image.Image.t

(** Build a world with programs registered, /dev/fuse installed and the
    debug image published.  [memory_mb] bounds the shared page-cache
    budget; [disk] selects an SSD-backed host filesystem. *)
val create : ?memory_mb:int -> ?disk:bool -> unit -> t

(** [attach world name] — {!Attach.attach} wired to the world's kernel,
    engines and memory budget.  [config] defaults to
    {!Attach.Config.default}. *)
val attach :
  t ->
  ?config:Attach.Config.t ->
  string ->
  (Attach.session, Repro_util.Errno.t) result

(** [with_session world name f] — {!Attach.with_session} wired to the
    world's kernel, engines and memory budget. *)
val with_session :
  t ->
  ?config:Attach.Config.t ->
  string ->
  (Attach.session -> 'a) ->
  ('a, Repro_util.Errno.t) result
