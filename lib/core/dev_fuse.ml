(* /dev/fuse: opening the device yields a fresh FUSE connection, carried on
   the fd as a custom payload.  CNTR opens this fd *before* attaching to
   the container (step #1), because the mount happens later from inside the
   nested namespace (§3.2.1). *)

open Repro_util
open Repro_os
open Repro_fuse

type Proc.custom_payload += Fuse_conn of Conn.t

let install kernel =
  Kernel.register_chardev kernel ~major:Devfs.fuse_major ~minor:Devfs.fuse_minor
    {
      Kernel.dev_name = "fuse";
      dev_read = (fun ~len:_ -> "");
      dev_write = String.length;
      dev_open =
        Some
          (fun k _proc ->
            let conn =
              Conn.create ~obs:k.Kernel.obs ~clock:k.Kernel.clock ~cost:k.Kernel.cost ()
            in
            Proc.Custom
              {
                Proc.c_name = "fuse";
                c_read = (fun ~len:_ -> Error Errno.EAGAIN);
                c_write = (fun s -> Ok (String.length s));
                c_close = (fun () -> ());
                c_readable = (fun () -> false);
                c_writable = (fun () -> true);
                c_payload = Fuse_conn conn;
              });
    }

(* Extract the connection carried by an open /dev/fuse fd. *)
let conn_of_fd proc fd =
  match Proc.fd proc fd with
  | Some (Proc.Custom { Proc.c_payload = Fuse_conn conn; _ }) -> Ok conn
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF
