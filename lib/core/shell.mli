(** The interactive shell CNTR starts inside the nested namespace (step #4):
    a small POSIX-ish interpreter with quoting, PATH resolution, output
    redirection and builtins ([cd], [export], [exit], [true], [false]). *)

open Repro_os

(** Split a command line into tokens; double quotes group words. *)
val tokenize : string -> string list

(** Expand $VAR / ${VAR} against the process environment. *)
val expand_vars : Proc.t -> string -> string

(** Split tokens on "|" into pipeline stages. *)
val split_pipeline : string list -> string list list

type redirect = No_redirect | Truncate of string | Append of string

(** Strip a trailing [> file] / [>> file] redirection from a token list. *)
val parse_redirect : string list -> string list * redirect

(** Resolve a command name to an executable path: absolute/relative names
    are checked for the x bit, bare names searched along [$PATH]. *)
val resolve_binary : Kernel.t -> Proc.t -> string -> (string, Repro_util.Errno.t) result

(** Evaluate one command line as [proc]: `a | b | c` pipelines, a trailing
    [>]/[>>] redirect, $VAR expansion, builtins.  Output goes to the
    process's fd 1 (or the redirect target).  Returns the exit code of the
    last stage; [Error] only for infrastructure failures. *)
val eval : Kernel.t -> Proc.t -> string -> (int, Repro_util.Errno.t) result

(** Evaluate a script line by line, stopping at the first hard error. *)
val eval_script : Kernel.t -> Proc.t -> string -> (int, Repro_util.Errno.t) result
