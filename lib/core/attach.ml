(* `cntr attach`: the four-step workflow of §3.2.

   #1 Resolve the container name to a PID and read its execution context
      from /proc; open /dev/fuse while still outside the container.
   #2 Launch the CntrFS server — on the host, or setns()'d into the "fat"
      container that carries the tools.
   #3 Fork into the application container, create a nested mount namespace,
      privatize it, mount CntrFS as the new root, re-anchor the application
      filesystem at /var/lib/cntr, bind /proc, /dev and config files from
      the application, chroot, then apply the container's environment
      (except PATH), capabilities and LSM profile.
   #4 Start an interactive shell on a pseudo-TTY. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs
open Repro_runtime
module Fault = Repro_fault.Fault
module Proxy = Repro_proxy.Proxy

type tools_location =
  | From_host
  | From_container of string (* the fat container's name *)

(* Everything that shapes an attach, in one value.  Call sites build it
   with record update over [default] so adding a knob never breaks them. *)
module Config = struct
  type t = {
    from : Proc.t option;
    tools : tools_location;
    opts : Opts.t;
    threads : int;
    fault : Fault.plan option;
    retry : Fault.retry option;
  }

  let default =
    {
      from = None;
      tools = From_host;
      opts = Opts.cntr_default;
      threads = 4;
      fault = None;
      retry = None;
    }
end

type session = {
  sn_kernel : Kernel.t;
  sn_shell_proc : Proc.t; (* lives in the nested namespace *)
  mutable sn_server_proc : Proc.t; (* swapped by [recover] *)
  sn_cntr_proc : Proc.t;
  sn_tty : Tty.t;
  sn_plane : Proxy.t; (* the forwarding plane the TTY and socket proxies ride *)
  sn_conn : Conn.t;
  sn_driver : Driver.t;
  mutable sn_server : Server.t; (* swapped by [recover] *)
  sn_ctx : Context.t;
  sn_app_pid : int;
  sn_config : Config.t;
  sn_fault : Fault.t option; (* the armed plane, when any *)
  mutable sn_detached : bool;
  mutable sn_recoveries : Repro_obs.Metrics.counter option;
}

let ( let* ) = Result.bind

let tmp_mountpoint = "/var/lib/.cntr-nested"

let rec mkdir_p kernel proc path =
  match Kernel.stat kernel proc path with
  | Ok _ -> Ok ()
  | Error Errno.ENOENT ->
      let parent = Pathx.dirname path in
      let* () = if parent = "/" || parent = "." then Ok () else mkdir_p kernel proc parent in
      (match Kernel.mkdir kernel proc path ~mode:0o755 with
      | Ok () | (Error Errno.EEXIST) -> Ok ()
      | Error e -> Error e)
  | Error e -> Error e

(* The configuration files CNTR bind-mounts from the application container
   over the tools filesystem (§3.2.3). *)
let config_files = [ "/etc/passwd"; "/etc/group"; "/etc/hostname"; "/etc/resolv.conf"; "/etc/hosts" ]

(* [config.from] is the process launching cntr — by default the host's init
   (the admin's shell).  Passing a process that lives inside a (privileged)
   container gives the paper's §7 "nested container" design: cntr runs in
   one container and attaches to another, with the launching container's
   filesystem serving as the tools side. *)
let attach ~kernel ~engines ~budget ?(config = Config.default) name =
  let opts = config.Config.opts in
  let init =
    match config.Config.from with Some p -> p | None -> Kernel.init_proc kernel
  in

  (* ----- step #1: resolve the container, gather its context ----- *)
  let* _engine, container = Engine.resolve_any engines name in
  let app_pid = Container.pid container in
  let cntr_proc = Kernel.fork kernel init in
  cntr_proc.Proc.comm <- "cntr";
  let* ctx = Context.inspect kernel cntr_proc ~pid:app_pid in
  (* open /dev/fuse before entering the container; the fd survives setns *)
  let* fuse_fd = Kernel.open_ kernel cntr_proc "/dev/fuse" [ Types.O_RDWR ] ~mode:0 in
  let* conn = Dev_fuse.conn_of_fd cntr_proc fuse_fd in
  conn.Conn.threads <- config.Config.threads;
  (* arm the fault plane before any request can flow *)
  let plane =
    Option.map
      (Fault.arm ~obs:kernel.Kernel.obs ~clock:kernel.Kernel.clock)
      config.Config.fault
  in
  (match plane, config.Config.retry with
  | None, None -> ()
  | _ -> Conn.supervise conn ?fault:plane ?retry:config.Config.retry ());

  (* ----- step #2: launch the CntrFS server ----- *)
  let server_proc = Kernel.fork kernel cntr_proc in
  server_proc.Proc.comm <- "cntrfs";
  let* () =
    match config.Config.tools with
    | From_host -> Ok ()
    | From_container fat_name ->
        let* _e, fat = Engine.resolve_any engines fat_name in
        Kernel.setns kernel server_proc ~target_pid:(Container.pid fat) [ Namespace.Mnt ]
  in
  let server =
    Server.create ~sched:(Conn.sched conn) ~kernel ~proc:server_proc
      ~root_path:"/" ~handle_cache:opts.Opts.handle_cache
      ~valid_ns:(opts.Opts.entry_timeout_ns, opts.Opts.attr_timeout_ns) ()
  in
  Conn.set_handler conn (Server.handle server);
  (* the server blocks until the child signals that CntrFS is mounted *)

  (* ----- step #3: initialize the nested namespace ----- *)
  let child = Kernel.fork kernel cntr_proc in
  child.Proc.comm <- "cntr-shell";
  let* () =
    Kernel.setns kernel child ~target_pid:app_pid
      [ Namespace.Mnt; Namespace.Pid; Namespace.Net; Namespace.Uts; Namespace.Ipc ]
  in
  Kernel.cgroup_attach kernel child ~cgroup:ctx.Context.cx_cgroup;
  let* () = Kernel.unshare kernel child [ Namespace.Mnt ] in
  (* mark everything private: nested mounts must not propagate back *)
  let* () = Kernel.make_rprivate kernel child in
  let driver = Driver.create ~conn ~opts ~budget in
  let fs = Driver.ops driver in
  let* () = mkdir_p kernel child tmp_mountpoint in
  let* _m = Kernel.mount_at kernel child ~fs tmp_mountpoint in
  (* signal the parent (over the shared Unix socketpair) to start serving *)
  Conn.start_serving conn;
  (* re-anchor the application filesystem under the tools root *)
  let* () = mkdir_p kernel child (tmp_mountpoint ^ "/var/lib/cntr") in
  let* _m = Kernel.bind_mount kernel child ~src:"/" ~dst:(tmp_mountpoint ^ "/var/lib/cntr") in
  (* the tools must see the application's /proc and /dev *)
  let* () =
    List.fold_left
      (fun acc special ->
        let* () = acc in
        match Kernel.stat kernel child special with
        | Error _ -> Ok () (* the app container doesn't have it *)
        | Ok _ ->
            let dst = tmp_mountpoint ^ special in
            let* () = mkdir_p kernel child dst in
            let* _m = Kernel.bind_mount kernel child ~src:special ~dst in
            Ok ())
      (Ok ())
      [ "/proc"; "/dev" ]
  in
  (* bind application config files over the tools filesystem *)
  let* () =
    List.fold_left
      (fun acc file ->
        let* () = acc in
        match Kernel.stat kernel child file with
        | Error _ -> Ok ()
        | Ok _ -> (
            let dst = tmp_mountpoint ^ file in
            let* () = mkdir_p kernel child (Pathx.dirname dst) in
            let* () =
              match Kernel.stat kernel child dst with
              | Ok _ -> Ok ()
              | Error Errno.ENOENT ->
                  let* fd = Kernel.open_ kernel child dst [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644 in
                  Kernel.close kernel child fd
              | Error e -> Error e
            in
            match Kernel.bind_mount kernel child ~src:file ~dst with
            | Ok _ -> Ok ()
            | Error e -> Error e))
      (Ok ()) config_files
  in
  (* atomically swap the root: chroot into the assembled tree *)
  let* () = Kernel.chroot kernel child tmp_mountpoint in
  let* () = Kernel.chdir kernel child "/" in
  (* environment: the container's, except PATH which comes from the tools
     side since the tools live there (§3.2.3) *)
  let tools_path = Option.value ~default:"/usr/local/bin:/usr/bin:/bin" (Proc.getenv cntr_proc "PATH") in
  child.Proc.env <- ("PATH", tools_path) :: List.remove_assoc "PATH" ctx.Context.cx_env;
  (* drop privileges to the container's *)
  Kernel.apply_lsm_profile kernel child ctx.Context.cx_lsm_profile;
  child.Proc.cred.Proc.caps <- ctx.Context.cx_caps;
  child.Proc.cred.Proc.uid <- ctx.Context.cx_uid;
  child.Proc.cred.Proc.gid <- ctx.Context.cx_gid;

  (* ----- step #4: interactive shell on a pseudo-TTY, over the plane ----- *)
  (* The forwarding plane lives in the cntr process on the host: the TTY
     stream and any socket forwarders share its reactor, staging buffers,
     [proxy] fault site and metrics.  It runs its own scheduler on the
     shared clock so its event ordering is independent of the FUSE
     connection's. *)
  let proxy_plane = Proxy.create ?fault:plane ~kernel ~proc:cntr_proc () in
  let tty = Tty.attach_plane proxy_plane child in
  let session =
    {
      sn_kernel = kernel;
      sn_shell_proc = child;
      sn_server_proc = server_proc;
      sn_cntr_proc = cntr_proc;
      sn_tty = tty;
      sn_plane = proxy_plane;
      sn_conn = conn;
      sn_driver = driver;
      sn_server = server;
      sn_ctx = ctx;
      sn_app_pid = app_pid;
      sn_config = config;
      sn_fault = plane;
      sn_detached = false;
      sn_recoveries = None;
    }
  in
  (match plane with
  | Some f ->
      (* Backing-store faults hit the server's syscalls only — whichever
         process currently serves, so recovery's relaunch stays covered
         while the shell's own syscalls never are. *)
      Kernel.set_fault kernel
        (Some
           (fun ~op proc ->
             if proc == session.sn_server_proc then Fault.backing_errno f ~op
             else None))
  | None -> ());
  Ok session

(* Run one shell command inside the session; returns (exit code, output). *)
let run session cmd =
  let code =
    match Shell.eval session.sn_kernel session.sn_shell_proc cmd with
    | Ok c -> c
    | Error e ->
        ignore (Kernel.write session.sn_kernel session.sn_shell_proc 1 ("cntr: " ^ Errno.message e ^ "\n"));
        126
  in
  (code, Tty.read_output session.sn_tty)

(* Tear the session down: shell and server exit; the nested namespace dies
   with its last process, leaving the application container untouched.
   Idempotent — a second detach (say, from a bracket's finalizer after the
   caller already detached) is a no-op. *)
let detach session =
  if not session.sn_detached then begin
    session.sn_detached <- true;
    ignore (Server.handle session.sn_server Protocol.root_ctx Protocol.Destroy);
    Proxy.close session.sn_plane;
    let exit_if_alive proc =
      if proc.Proc.alive then Kernel.exit session.sn_kernel proc 0
    in
    exit_if_alive session.sn_shell_proc;
    exit_if_alive session.sn_server_proc;
    exit_if_alive session.sn_cntr_proc
  end

(* Bracket: attach, hand the session to [f], always detach — even when [f]
   raises.  [detach] being idempotent, [f] may detach early itself. *)
let with_session ~kernel ~engines ~budget ?config name f =
  let* session = attach ~kernel ~engines ~budget ?config name in
  Fun.protect ~finally:(fun () -> detach session) (fun () -> Ok (f session))

(* ----- fault plane: test hooks and recovery ----- *)

let fault session = session.sn_fault

(* Kill the CntrFS server out from under the session: every queued and
   future request resolves to ENOTCONN until [recover]. *)
let crash_server session = Conn.inject_crash session.sn_conn

(* Make the server sit on the next request for [ns] virtual nanoseconds —
   long enough to trip an armed deadline. *)
let hang_server session ~ns = Conn.inject session.sn_conn (Fault.Hang ns)

(* Relaunch the CntrFS server: fork a replacement from the dead server (the
   fork inherits its namespace view, so a fat-container server stays inside
   the fat container), replay the driver's inode map into it, swap the
   handler, revive the connection and reopen the driver's file handles.
   The mount, the shell, the driver caches and dirty pages all survive. *)
let recover session =
  let pairs = Driver.ino_paths session.sn_driver in
  let old = session.sn_server_proc in
  let np = Kernel.fork session.sn_kernel old in
  np.Proc.comm <- old.Proc.comm;
  let opts = session.sn_config.Config.opts in
  let server =
    Server.create ~sched:(Conn.sched session.sn_conn) ~kernel:session.sn_kernel
      ~proc:np ~root_path:"/" ~handle_cache:opts.Opts.handle_cache
      ~valid_ns:(opts.Opts.entry_timeout_ns, opts.Opts.attr_timeout_ns) ()
  in
  Server.restore server pairs;
  session.sn_server <- server;
  session.sn_server_proc <- np;
  if old.Proc.alive then Kernel.exit session.sn_kernel old 0;
  Conn.set_handler session.sn_conn (Server.handle server);
  Conn.revive session.sn_conn;
  Driver.on_server_restart session.sn_driver;
  let c =
    match session.sn_recoveries with
    | Some c -> c
    | None ->
        let c =
          Repro_obs.Metrics.counter
            (Repro_obs.Obs.metrics (Conn.obs session.sn_conn))
            "session.recoveries"
        in
        session.sn_recoveries <- Some c;
        c
  in
  Repro_obs.Metrics.incr c

let context session = session.sn_ctx

(* The session's forwarding plane: callers add socket forwarders to it
   (`cntr attach` exposes this as dbus/ssh-agent forwarding, §3.2.4). *)
let proxy session = session.sn_plane

let obs session = Conn.obs session.sn_conn

(* A human-readable session report: the FUSE traffic the tools generated —
   useful to understand what an attach session cost (the numbers behind
   §5.2's analysis).  Every figure is a view over the session's metrics
   registry. *)
let report session =
  let metrics = Repro_obs.Obs.metrics (obs session) in
  let c name = Repro_obs.Metrics.counter_value metrics name in
  let g name = Repro_obs.Metrics.gauge_value metrics name in
  let stats = Conn.stats session.sn_conn in
  let by_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.Conn.by_kind []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat " "
  in
  let hit_rate = 100. *. g "vfs.page_cache.fuse.hit_ratio" in
  let busy =
    Repro_obs.Metrics.counters_with_prefix metrics ~prefix:"cntrfs.worker."
    |> List.map (fun (name, v) ->
           (* cntrfs.worker.<i>.busy_ns *)
           let i =
             Scanf.sscanf_opt name "cntrfs.worker.%d.busy_ns" Fun.id
             |> Option.value ~default:(-1)
           in
           (i, v))
    |> List.sort compare
    |> List.map (fun (i, v) -> Printf.sprintf "w%d=%dns" i v)
    |> String.concat " "
  in
  let fault_lines =
    let retries = c "fuse.retries" in
    let timeouts = c "fuse.timeouts" in
    let recoveries = c "session.recoveries" in
    let injected = match session.sn_fault with Some f -> Fault.injected f | None -> 0 in
    if injected = 0 && retries = 0 && timeouts = 0 && recoveries = 0 then ""
    else
      Printf.sprintf "faults: %d injected, %d retries, %d timeouts, %d recoveries\n"
        injected retries timeouts recoveries
  in
  Printf.sprintf
    "cntrfs session: %d requests (%s)\n\
     transfer: %s to server, %s from server, %s spliced\n\
     page cache: %.0f%% hit rate (%d hits, %d misses, %d evictions)\n\
     server: %d lookups (open+stat each), %.1fx backing amplification\n\
     queue: depth max %.0f mean %.2f, inflight %.0f (max %.0f), %d spurious wakeups\n\
     workers: %s\n\
     %skernel: %d syscalls, %d context switches\n"
    stats.Conn.requests by_kind
    (Size.to_string stats.Conn.bytes_to_server)
    (Size.to_string stats.Conn.bytes_from_server)
    (Size.to_string stats.Conn.spliced_bytes)
    hit_rate
    (c "vfs.page_cache.fuse.hits")
    (c "vfs.page_cache.fuse.misses")
    (c "vfs.page_cache.fuse.evictions")
    (Server.lookups_performed session.sn_server)
    (g "cntrfs.lookup.amplification")
    (g "fuse.queue.depth.max")
    (g "fuse.queue.depth.mean")
    (g "fuse.inflight")
    (g "fuse.inflight.max")
    (c "fuse.wakeups.spurious")
    (if busy = "" then "(none spawned)" else busy)
    fault_lines
    (c "os.syscall.count")
    (c "os.context_switches")
