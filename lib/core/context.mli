(** Step #1 of the attach workflow (§3.2.1): the execution context of a
    container, read and parsed from the /proc filesystem of its main
    process — never from kernel internals, exactly like the real CNTR. *)

open Repro_os

type t = {
  cx_pid : int;  (** pid of the inspected process *)
  cx_uid : int;  (** effective uid (from [status]) *)
  cx_gid : int;
  cx_caps : Caps.Set.t;  (** effective capabilities (from [CapEff]) *)
  cx_env : (string * string) list;  (** environment (from [environ]) *)
  cx_cgroup : string;  (** cgroup path (from [cgroup]) *)
  cx_lsm_profile : string option;  (** AppArmor/SELinux profile, [None] if unconfined *)
  cx_ns_ids : (Namespace.kind * string) list;  (** namespace tags (from [ns/]) *)
  cx_uid_map : string;  (** user-namespace uid map, verbatim *)
  cx_gid_map : string;
}

(** [inspect kernel proc ~pid] reads /proc/[pid]/{status,environ,cgroup,
    attr/current,uid_map,gid_map,ns/*} as [proc] and parses them. *)
val inspect : Kernel.t -> Proc.t -> pid:int -> (t, Repro_util.Errno.t) result

val pp : Format.formatter -> t -> unit
