(* The programs behind the binaries in images and on the host: shell,
   coreutils, and the debugging tools (gdb, strace, ps, top) whose
   on-demand delivery is CNTR's purpose.  Each writes to the process's fd 1
   and sees exactly the process's namespace view — a gdb launched inside
   the nested namespace reads the *application container's* /proc. *)

open Repro_util
open Repro_os

let out k p s = ignore (Kernel.write k p 1 s)
let outf k p fmt = Printf.ksprintf (out k p) fmt

(* drain standard input (for pipeline filter tools) *)
let read_stdin k p =
  let buf = Buffer.create 256 in
  let rec go () =
    match Kernel.read k p 0 ~len:65536 with
    | Ok "" -> ()
    | Ok s ->
        Buffer.add_string buf s;
        go ()
    | Error _ -> ()
  in
  go ();
  Buffer.contents buf

let lines_of text =
  String.split_on_char '\n' text |> List.filter (fun l -> l <> "")

let ( let* ) = Result.bind

(* list the numeric entries of /proc with their comm *)
let proc_entries k p =
  let* entries = Kernel.readdir k p "/proc" in
  let pids =
    List.filter_map (fun e -> int_of_string_opt e.Repro_vfs.Types.d_name) entries
    |> List.sort compare
  in
  Ok
    (List.filter_map
       (fun pid ->
         match Kernel.read_whole k p (Printf.sprintf "/proc/%d/status" pid) with
         | Ok status ->
             let name =
               String.split_on_char '\n' status
               |> List.find_map (fun l ->
                      match String.index_opt l '\t' with
                      | Some i when String.length l > 5 && String.sub l 0 5 = "Name:" ->
                          Some (String.sub l (i + 1) (String.length l - i - 1))
                      | _ -> None)
             in
             Some (pid, Option.value ~default:"?" name)
         | Error _ -> None)
       pids)

let register_all kernel =
  let reg name f = Kernel.register_program kernel name f in

  (* busybox: one binary, many applets, dispatched on argv[0] (or on the
     first argument when invoked as "busybox <applet> ...") *)
  reg "busybox" (fun k p args ->
      let applet, rest =
        match args with
        | argv0 :: rest when Repro_util.Pathx.basename argv0 <> "busybox" ->
            (Repro_util.Pathx.basename argv0, rest)
        | _ :: applet :: rest -> (applet, rest)
        | _ -> ("sh", [])
      in
      match Hashtbl.find_opt k.Kernel.programs applet with
      | Some prog when applet <> "busybox" -> prog k p (applet :: rest)
      | _ ->
          outf k p "busybox: applet not found: %s\n" applet;
          127);

  reg "sh" (fun k p args ->
      (* invoked as a shebang interpreter: sh <script>; or `sh -c "cmd"` *)
      match args with
      | _ :: "-c" :: cmd :: _ ->
          (match Shell.eval k p cmd with Ok c -> c | Error _ -> 1)
      | _ :: script :: _ -> (
          match Kernel.read_whole k p script with
          | Ok text -> (
              match Shell.eval_script k p text with Ok c -> c | Error _ -> 1)
          | Error _ -> 127)
      | _ -> 0);

  reg "echo" (fun k p args ->
      out k p (String.concat " " (List.tl args) ^ "\n");
      0);

  reg "cat" (fun k p args ->
      List.fold_left
        (fun code file ->
          match Kernel.read_whole k p file with
          | Ok content ->
              out k p content;
              code
          | Error e ->
              outf k p "cat: %s: %s\n" file (Errno.message e);
              1)
        0 (List.tl args));

  reg "ls" (fun k p args ->
      let dirs = match List.tl args with [] -> [ "." ] | l -> l in
      List.fold_left
        (fun code dir ->
          match Kernel.readdir k p dir with
          | Ok entries ->
              entries
              |> List.filter (fun e -> e.Repro_vfs.Types.d_name <> "." && e.Repro_vfs.Types.d_name <> "..")
              |> List.iter (fun e -> out k p (e.Repro_vfs.Types.d_name ^ "\n"));
              code
          | Error Errno.ENOTDIR ->
              out k p (dir ^ "\n");
              code
          | Error e ->
              outf k p "ls: %s: %s\n" dir (Errno.message e);
              1)
        0 dirs);

  reg "env" (fun k p _args ->
      List.iter (fun (key, v) -> outf k p "%s=%s\n" key v) p.Proc.env;
      0);

  reg "which" (fun k p args ->
      List.fold_left
        (fun code name ->
          match Shell.resolve_binary k p name with
          | Ok path ->
              out k p (path ^ "\n");
              code
          | Error _ ->
              outf k p "which: no %s in PATH\n" name;
              1)
        0 (List.tl args));

  reg "id" (fun k p _args ->
      outf k p "uid=%d gid=%d groups=%s\n" p.Proc.cred.Proc.uid p.Proc.cred.Proc.gid
        (String.concat "," (List.map string_of_int p.Proc.cred.Proc.groups));
      0);

  reg "hostname" (fun k p _args ->
      out k p (Kernel.gethostname k p ^ "\n");
      0);

  reg "ps" (fun k p _args ->
      match proc_entries k p with
      | Ok entries ->
          out k p "  PID COMMAND\n";
          List.iter (fun (pid, name) -> outf k p "%5d %s\n" pid name) entries;
          0
      | Error e ->
          outf k p "ps: cannot read /proc: %s\n" (Errno.message e);
          1);

  reg "top" (fun k p _args ->
      match proc_entries k p with
      | Ok entries ->
          outf k p "Tasks: %d total\n" (List.length entries);
          0
      | Error _ -> 1);

  (* gdb -p <pid>: attach to a process.  Works only if the target is
     visible in this namespace's /proc and we hold CAP_SYS_PTRACE — the
     "tools have the same view on system resources as the application"
     property of §3.1. *)
  reg "gdb" (fun k p args ->
      match args with
      | _ :: "-p" :: pid :: _ -> (
          if not (Caps.Set.mem Caps.CAP_SYS_PTRACE p.Proc.cred.Proc.caps)
             && p.Proc.cred.Proc.uid <> 0
          then begin
            out k p "gdb: ptrace: Operation not permitted\n";
            1
          end
          else
            match Kernel.read_whole k p (Printf.sprintf "/proc/%s/status" pid) with
            | Ok status ->
                let name =
                  match String.index_opt status '\t' with
                  | Some i ->
                      let rest = String.sub status (i + 1) (String.length status - i - 1) in
                      List.hd (String.split_on_char '\n' rest)
                  | None -> "?"
                in
                outf k p "Attaching to process %s\nReading symbols from %s...\n(gdb) attached\n" pid name;
                0
            | Error _ ->
                outf k p "gdb: cannot attach to %s: no such process in this namespace\n" pid;
                1)
      | _ ->
          out k p "GNU gdb (sim) 8.1\n(gdb) no target\n";
          0);

  reg "strace" (fun k p args ->
      match args with
      | _ :: "-p" :: pid :: _ -> (
          match Kernel.stat k p (Printf.sprintf "/proc/%s" pid) with
          | Ok _ ->
              outf k p "strace: Process %s attached\nread(3, ...) = 42\n" pid;
              0
          | Error _ ->
              outf k p "strace: attach: %s: No such process\n" pid;
              1)
      | _ -> 0);

  reg "mount" (fun k p _args ->
      Kernel.mounts_of_ns p.Proc.ns.Proc.mnt
      |> List.iter (fun m ->
             outf k p "%s on mount-%d type %s\n" m.Mount.m_fs.Repro_vfs.Fsops.fs_name
               m.Mount.m_id m.Mount.m_fs.Repro_vfs.Fsops.fs_name);
      0);

  reg "grep" (fun k p args ->
      match List.tl args with
      | pattern :: files ->
          let matched = ref false in
          let scan content =
            String.split_on_char '\n' content
            |> List.iter (fun line ->
                   let contains =
                     let pl = String.length pattern and ll = String.length line in
                     let rec go i = i + pl <= ll && (String.sub line i pl = pattern || go (i + 1)) in
                     pl > 0 && go 0
                   in
                   if contains then begin
                     matched := true;
                     out k p (line ^ "\n")
                   end)
          in
          (match files with
          | [] -> scan (read_stdin k p) (* filter mode in a pipeline *)
          | _ ->
              List.iter
                (fun file ->
                  match Kernel.read_whole k p file with
                  | Ok content -> scan content
                  | Error e -> outf k p "grep: %s: %s\n" file (Errno.message e))
                files);
          if !matched then 0 else 1
      | [] -> 2);

  reg "find" (fun k p args ->
      let start = match List.tl args with d :: _ -> d | [] -> "." in
      let rec walk path =
        out k p (path ^ "\n");
        match Kernel.readdir k p path with
        | Ok entries ->
            List.iter
              (fun e ->
                let n = e.Repro_vfs.Types.d_name in
                if n <> "." && n <> ".." then
                  let child = Pathx.concat path n in
                  match e.Repro_vfs.Types.d_kind with
                  | Repro_vfs.Types.Dir -> walk child
                  | _ -> out k p (child ^ "\n"))
              entries
        | Error _ -> ()
      in
      walk start;
      0);

  reg "stat" (fun k p args ->
      List.fold_left
        (fun code file ->
          match Kernel.stat k p file with
          | Ok st ->
              outf k p "  File: %s\n  Size: %d\n  Inode: %d  Links: %d\n  Uid: %d Gid: %d Mode: %o\n"
                file st.Repro_vfs.Types.st_size st.Repro_vfs.Types.st_ino
                st.Repro_vfs.Types.st_nlink st.Repro_vfs.Types.st_uid st.Repro_vfs.Types.st_gid
                st.Repro_vfs.Types.st_mode;
              code
          | Error e ->
              outf k p "stat: %s: %s\n" file (Errno.message e);
              1)
        0 (List.tl args));

  reg "du" (fun k p args ->
      let rec du path =
        match Kernel.stat k p path with
        | Error _ -> 0
        | Ok st -> (
            match st.Repro_vfs.Types.st_kind with
            | Repro_vfs.Types.Dir -> (
                match Kernel.readdir k p path with
                | Ok entries ->
                    List.fold_left
                      (fun acc e ->
                        let n = e.Repro_vfs.Types.d_name in
                        if n = "." || n = ".." then acc else acc + du (Pathx.concat path n))
                      0 entries
                | Error _ -> 0)
            | _ -> st.Repro_vfs.Types.st_size)
      in
      let path = match List.tl args with d :: _ -> d | [] -> "." in
      let total = du path in
      outf k p "%d\t%s\n" total path;
      0);

  reg "vi" (fun k p args ->
      (* headless "editor": append an edit marker, proving in-place config
         editing through /var/lib/cntr works (§7 workflow) *)
      match List.tl args with
      | file :: _ -> (
          match
            let* fd =
              Kernel.open_ k p file [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY; Repro_vfs.Types.O_APPEND ] ~mode:0o644
            in
            let* _ = Kernel.write k p fd "# edited with vi via cntr\n" in
            Kernel.close k p fd
          with
          | Ok () -> 0
          | Error e ->
              outf k p "vi: %s: %s\n" file (Errno.message e);
              1)
      | [] -> 0);

  reg "less" (fun k p args ->
      match List.tl args with
      | file :: _ -> (
          match Kernel.read_whole k p file with
          | Ok c ->
              out k p c;
              0
          | Error e ->
              outf k p "less: %s: %s\n" file (Errno.message e);
              1)
      | [] -> 0);

  reg "pkg" (fun k p args ->
      outf k p "pkg: simulated package manager (%s)\n" (String.concat " " (List.tl args));
      0);

  (* pipeline filter tools: read stdin (or files), write stdout *)
  let input k p files =
    match files with
    | [] -> read_stdin k p
    | _ ->
        String.concat ""
          (List.map (fun f -> Result.value ~default:"" (Kernel.read_whole k p f)) files)
  in
  reg "wc" (fun k p args ->
      let flags, files = List.partition (fun a -> String.length a > 0 && a.[0] = '-') (List.tl args) in
      let text = input k p files in
      let l = List.length (lines_of text) in
      if List.mem "-l" flags then outf k p "%d\n" l
      else outf k p "%d %d\n" l (String.length text);
      0);
  reg "head" (fun k p args ->
      let n, files =
        match List.tl args with
        | "-n" :: count :: rest -> (Option.value ~default:10 (int_of_string_opt count), rest)
        | rest -> (10, rest)
      in
      let ls = lines_of (input k p files) in
      List.iteri (fun i l -> if i < n then out k p (l ^ "\n")) ls;
      0);
  reg "tail" (fun k p args ->
      let n, files =
        match List.tl args with
        | "-n" :: count :: rest -> (Option.value ~default:10 (int_of_string_opt count), rest)
        | rest -> (10, rest)
      in
      let ls = lines_of (input k p files) in
      let total = List.length ls in
      List.iteri (fun i l -> if i >= total - n then out k p (l ^ "\n")) ls;
      0);
  reg "sort" (fun k p args ->
      let ls = lines_of (input k p (List.tl args)) in
      List.iter (fun l -> out k p (l ^ "\n")) (List.sort compare ls);
      0);
  reg "uniq" (fun k p args ->
      let ls = lines_of (input k p (List.tl args)) in
      let rec go prev = function
        | [] -> ()
        | l :: rest ->
            if Some l <> prev then out k p (l ^ "\n");
            go (Some l) rest
      in
      go None ls;
      0);

  (* real file-management tools *)
  reg "rm" (fun k p args ->
      List.fold_left
        (fun code f ->
          match Kernel.unlink k p f with
          | Ok () -> code
          | Error e ->
              outf k p "rm: %s: %s\n" f (Errno.message e);
              1)
        0
        (List.filter (fun a -> a <> "-f" && a <> "-r") (List.tl args)));
  reg "mkdir" (fun k p args ->
      List.fold_left
        (fun code d ->
          match Kernel.mkdir k p d ~mode:0o755 with
          | Ok () -> code
          | Error e ->
              outf k p "mkdir: %s: %s\n" d (Errno.message e);
              1)
        0
        (List.filter (fun a -> a <> "-p") (List.tl args)));
  reg "rmdir" (fun k p args ->
      List.fold_left
        (fun code d ->
          match Kernel.rmdir k p d with
          | Ok () -> code
          | Error e ->
              outf k p "rmdir: %s: %s\n" d (Errno.message e);
              1)
        0 (List.tl args));
  reg "touch" (fun k p args ->
      List.fold_left
        (fun code f ->
          match Kernel.open_ k p f [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY ] ~mode:0o644 with
          | Ok fd ->
              ignore (Kernel.close k p fd);
              code
          | Error e ->
              outf k p "touch: %s: %s\n" f (Errno.message e);
              1)
        0 (List.tl args));
  reg "cp" (fun k p args ->
      match List.tl args with
      | [ src; dst ] -> (
          match Kernel.read_whole k p src with
          | Error e ->
              outf k p "cp: %s: %s\n" src (Errno.message e);
              1
          | Ok data -> (
              match
                let* fd =
                  Kernel.open_ k p dst
                    [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY; Repro_vfs.Types.O_TRUNC ]
                    ~mode:0o644
                in
                let* _ = Kernel.write k p fd data in
                Kernel.close k p fd
              with
              | Ok () -> 0
              | Error e ->
                  outf k p "cp: %s: %s\n" dst (Errno.message e);
                  1))
      | _ -> 2);
  reg "mv" (fun k p args ->
      match List.tl args with
      | [ src; dst ] -> (
          match Kernel.rename k p ~src ~dst with
          | Ok () -> 0
          | Error e ->
              outf k p "mv: %s\n" (Errno.message e);
              1)
      | _ -> 2);
  reg "ln" (fun k p args ->
      match List.tl args with
      | [ "-s"; target; linkpath ] -> (
          match Kernel.symlink k p ~target ~linkpath with
          | Ok () -> 0
          | Error e ->
              outf k p "ln: %s\n" (Errno.message e);
              1)
      | [ target; linkpath ] -> (
          match Kernel.link k p ~target ~linkpath with
          | Ok () -> 0
          | Error e ->
              outf k p "ln: %s\n" (Errno.message e);
              1)
      | _ -> 2);
  reg "chmod" (fun k p args ->
      match List.tl args with
      | [ mode; f ] -> (
          match int_of_string_opt ("0o" ^ mode) with
          | None -> 2
          | Some m -> (
              match Kernel.chmod k p f m with
              | Ok () -> 0
              | Error e ->
                  outf k p "chmod: %s\n" (Errno.message e);
                  1))
      | _ -> 2);

  (* remaining fillers used only as catalogue ballast *)
  List.iter
    (fun name ->
      if not (Kernel.program_exists kernel name) then
        reg name (fun k p args ->
            outf k p "%s: ok\n" (String.concat " " args);
            0))
    [ "chown"; "cut"; "tr"; "date"; "df"; "sed"; "awk"; "tar" ]
