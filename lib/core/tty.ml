(* Pseudo-TTY plumbing (§3.2.4).  The shell inside the nested namespace
   must not hold the user's real terminal fds — a pseudo-TTY pair proxies
   its standard streams, and the master side is what `cntr` forwards to the
   user's terminal. *)

open Repro_os

type t = {
  (* master side: what the cntr process on the host reads/writes *)
  m_out : Pipe.t; (* shell stdout/stderr -> user *)
  m_in : Pipe.t; (* user keystrokes -> shell stdin *)
}

(* Allocate the pair and install the slave ends as fds 0/1/2 of [proc]. *)
let attach _kernel proc =
  let m_out = Pipe.create ~capacity:(1024 * 1024) () in
  let m_in = Pipe.create ~capacity:(64 * 1024) () in
  Hashtbl.replace proc.Proc.fds 0 (Proc.Pipe_r m_in);
  Hashtbl.replace proc.Proc.fds 1 (Proc.Pipe_w m_out);
  Hashtbl.replace proc.Proc.fds 2 (Proc.Pipe_w m_out);
  { m_out; m_in }

(* Drain everything the shell has written. *)
let read_output t =
  let buf = Buffer.create 256 in
  let rec go () =
    match Pipe.read t.m_out ~len:65536 with
    | Ok "" -> ()
    | Ok s ->
        Buffer.add_string buf s;
        go ()
    | Error _ -> ()
  in
  go ();
  Buffer.contents buf

let send_input t s =
  match Pipe.write t.m_in s with Ok n -> n | Error _ -> 0

let input_line t =
  (* read one line the user typed, if any *)
  match Pipe.read t.m_in ~len:4096 with
  | Ok s when s <> "" -> Some s
  | _ -> None
