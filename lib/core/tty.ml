(* Pseudo-TTY plumbing (§3.2.4).  The shell inside the nested namespace
   must not hold the user's real terminal fds — a pseudo-TTY pair proxies
   its standard streams, and the master side is what `cntr` forwards to the
   user's terminal.

   Two wirings exist.  [attach] is the direct pair: the master reads the
   same pipes the shell's fds point at.  [attach_plane] routes the stream
   over the forwarding plane: the shell gets its own slave pipes, the
   master keeps its own, and a plane stream pumps between them — the TTY
   becomes just another duplex connection on the event-driven data path,
   sharing its backpressure, fault site and metrics. *)

open Repro_os
module Proxy = Repro_proxy.Proxy

type t = {
  (* master side: what the cntr process on the host reads/writes *)
  m_out : Pipe.t; (* shell stdout/stderr -> user *)
  m_in : Pipe.t; (* user keystrokes -> shell stdin *)
  t_plane : Proxy.t option;
}

(* Allocate the pair and install the slave ends as fds 0/1/2 of [proc]. *)
let attach _kernel proc =
  let m_out = Pipe.create ~capacity:(1024 * 1024) () in
  let m_in = Pipe.create ~capacity:(64 * 1024) () in
  Hashtbl.replace proc.Proc.fds 0 (Proc.Pipe_r m_in);
  Hashtbl.replace proc.Proc.fds 1 (Proc.Pipe_w m_out);
  Hashtbl.replace proc.Proc.fds 2 (Proc.Pipe_w m_out);
  { m_out; m_in; t_plane = None }

(* Slave pipes for the shell, master pipes for the user, and a plane
   stream pumping between them.  The slave fds 1 and 2 share one pipe, so
   its writer count is bumped to two — EOF reaches the plane exactly when
   the shell's last stdout/stderr fd closes. *)
let attach_plane plane proc =
  let s_out = Pipe.create ~capacity:(1024 * 1024) () in
  let s_in = Pipe.create ~capacity:(64 * 1024) () in
  let m_out = Pipe.create ~capacity:(1024 * 1024) () in
  let m_in = Pipe.create ~capacity:(64 * 1024) () in
  Hashtbl.replace proc.Proc.fds 0 (Proc.Pipe_r s_in);
  Hashtbl.replace proc.Proc.fds 1 (Proc.Pipe_w s_out);
  Hashtbl.replace proc.Proc.fds 2 (Proc.Pipe_w s_out);
  Pipe.add_writer s_out;
  let pproc = Proxy.proc plane in
  let a_rfd = Proc.alloc_fd pproc (Proc.Pipe_r s_out) in
  let a_wfd = Proc.alloc_fd pproc (Proc.Pipe_w s_in) in
  let b_rfd = Proc.alloc_fd pproc (Proc.Pipe_r m_in) in
  let b_wfd = Proc.alloc_fd pproc (Proc.Pipe_w m_out) in
  ignore (Proxy.add_stream plane ~label:"tty" ~a_rfd ~a_wfd ~b_rfd ~b_wfd ());
  { m_out; m_in; t_plane = Some plane }

(* Drain everything the shell has written.  Over the plane, alternate
   between driving the plane and emptying the master pipe until no more
   bytes arrive — the master pipe is smaller than what a session can
   produce, so one drive may not flush everything. *)
let read_output t =
  let buf = Buffer.create 256 in
  let rec drain_master () =
    match Pipe.read t.m_out ~len:65536 with
    | Ok "" -> ()
    | Ok s ->
        Buffer.add_string buf s;
        drain_master ()
    | Error _ -> ()
  in
  (match t.t_plane with
  | None -> drain_master ()
  | Some plane ->
      let rec go () =
        Proxy.drain plane;
        let before = Buffer.length buf in
        drain_master ();
        if Buffer.length buf > before then go ()
      in
      go ());
  Buffer.contents buf

let send_input t s =
  let n = match Pipe.write t.m_in s with Ok n -> n | Error _ -> 0 in
  (* over the plane, deliver to the shell's stdin before the caller runs
     the shell (evaluation is synchronous) *)
  (match t.t_plane with Some plane -> Proxy.drain plane | None -> ());
  n

let input_line t =
  (* read one line the user typed, if any (direct-pair wiring only: over
     the plane the stream consumes the master input pipe) *)
  match Pipe.read t.m_in ~len:4096 with
  | Ok s when s <> "" -> Some s
  | _ -> None
