(** The programs behind the binaries in images and on the host: the shell,
    coreutils, and the debugging tools (gdb, strace, ps, top, vi, ...) whose
    on-demand delivery is CNTR's purpose.  Programs write to the calling
    process's fd 1 and observe exactly that process's namespace view. *)

(** Register every toolbox program with the kernel's program registry. *)
val register_all : Repro_os.Kernel.t -> unit
