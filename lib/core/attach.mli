(** [cntr attach]: the paper's four-step workflow (§3.2).

    Attaching builds a nested mount namespace inside a running application
    container: CntrFS (serving the tools side — host or fat container)
    becomes the root filesystem, the application's filesystem is re-anchored
    at [/var/lib/cntr], its [/proc], [/dev] and key [/etc] files are
    bind-mounted over the tools view, and an interactive shell starts on a
    pseudo-TTY with the container's environment, capabilities and LSM
    profile applied. *)

open Repro_os
open Repro_vfs

(** Where the auxiliary tools come from (§2.4). *)
type tools_location =
  | From_host  (** serve the launching namespace's filesystem (usually the host) *)
  | From_container of string  (** serve a named "fat" container's filesystem *)

(** A live attach session. *)
type session = {
  sn_kernel : Kernel.t;
  sn_shell_proc : Proc.t;  (** the shell process, inside the nested namespace *)
  sn_server_proc : Proc.t;  (** the CntrFS server process *)
  sn_cntr_proc : Proc.t;  (** the cntr frontend process *)
  sn_tty : Tty.t;  (** pseudo-TTY master side *)
  sn_conn : Repro_fuse.Conn.t;  (** the FUSE connection (statistics live here) *)
  sn_driver : Repro_fuse.Driver.t;
  sn_server : Repro_cntrfs.Server.t;
  sn_ctx : Context.t;  (** the container context captured in step #1 *)
  sn_app_pid : int;  (** pid of the application container's main process *)
}

(** The mountpoint of the nested root inside the application container's
    filesystem (created by step #3; invisible to the application itself). *)
val tmp_mountpoint : string

(** The application files bind-mounted over the tools filesystem. *)
val config_files : string list

(** [attach ~kernel ~engines ~budget name] performs steps #1–#4 against the
    container named (or id-prefixed) [name].

    @param from the process launching cntr; defaults to the host's init.
      Passing a process inside a privileged container yields the paper's §7
      nested-container design.
    @param tools where the tool filesystem comes from (default {!From_host}).
    @param opts FUSE mount options (default {!Repro_fuse.Opts.cntr_default}).
    @param threads CntrFS server threads (default 4). *)
val attach :
  kernel:Kernel.t ->
  engines:Repro_runtime.Engine.engines ->
  budget:Mem_budget.t ->
  ?from:Proc.t ->
  ?tools:tools_location ->
  ?opts:Repro_fuse.Opts.t ->
  ?threads:int ->
  string ->
  (session, Repro_util.Errno.t) result

(** Run one shell command line inside the session; returns the exit code and
    everything written to the pseudo-TTY. *)
val run : session -> string -> int * string

(** Tear the session down: the shell and server exit and the nested
    namespace disappears; the application container is untouched. *)
val detach : session -> unit

(** The container context captured during step #1. *)
val context : session -> Context.t

(** The session's observability handle (shared with the kernel): all
    [fuse.*], [cntrfs.*], [vfs.*] and [os.*] metrics of the attach. *)
val obs : session -> Repro_obs.Obs.t

(** Human-readable FUSE traffic summary of the session: request counts by
    kind, transfer volumes, page-cache hit rate, server-side lookups,
    lookup amplification, syscall and context-switch totals — all views
    over the registry on {!obs}. *)
val report : session -> string
