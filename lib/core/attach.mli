(** [cntr attach]: the paper's four-step workflow (§3.2).

    Attaching builds a nested mount namespace inside a running application
    container: CntrFS (serving the tools side — host or fat container)
    becomes the root filesystem, the application's filesystem is re-anchored
    at [/var/lib/cntr], its [/proc], [/dev] and key [/etc] files are
    bind-mounted over the tools view, and an interactive shell starts on a
    pseudo-TTY with the container's environment, capabilities and LSM
    profile applied. *)

open Repro_os
open Repro_vfs

(** Where the auxiliary tools come from (§2.4). *)
type tools_location =
  | From_host  (** serve the launching namespace's filesystem (usually the host) *)
  | From_container of string  (** serve a named "fat" container's filesystem *)

(** Attach configuration.  Build one with record update over {!Config.default}
    ([{ Config.default with tools = From_container "debug" }]) so call sites
    survive new fields. *)
module Config : sig
  type t = {
    from : Proc.t option;
        (** the process launching cntr; [None] = the host's init.  A process
            inside a privileged container yields the paper's §7
            nested-container design. *)
    tools : tools_location;  (** where the tool filesystem comes from *)
    opts : Repro_fuse.Opts.t;  (** FUSE mount options *)
    threads : int;  (** CntrFS server threads *)
    fault : Repro_fault.Fault.plan option;
        (** arm a deterministic fault plan over the session *)
    retry : Repro_fault.Fault.retry option;
        (** per-request deadlines + idempotent-opcode retry *)
  }

  (** [From_host], {!Repro_fuse.Opts.cntr_default}, 4 threads, no faults,
      no retry. *)
  val default : t
end

(** A live attach session. *)
type session = {
  sn_kernel : Kernel.t;
  sn_shell_proc : Proc.t;  (** the shell process, inside the nested namespace *)
  mutable sn_server_proc : Proc.t;
      (** the CntrFS server process; swapped by {!recover} *)
  sn_cntr_proc : Proc.t;  (** the cntr frontend process *)
  sn_tty : Tty.t;  (** pseudo-TTY master side *)
  sn_plane : Repro_proxy.Proxy.t;
      (** the forwarding plane carrying the TTY stream and socket proxies *)
  sn_conn : Repro_fuse.Conn.t;  (** the FUSE connection (statistics live here) *)
  sn_driver : Repro_fuse.Driver.t;
  mutable sn_server : Repro_cntrfs.Server.t;  (** swapped by {!recover} *)
  sn_ctx : Context.t;  (** the container context captured in step #1 *)
  sn_app_pid : int;  (** pid of the application container's main process *)
  sn_config : Config.t;  (** the configuration the session was built with *)
  sn_fault : Repro_fault.Fault.t option;  (** the armed fault plane, when any *)
  mutable sn_detached : bool;  (** set by the first {!detach} *)
  mutable sn_recoveries : Repro_obs.Metrics.counter option;
}

(** The mountpoint of the nested root inside the application container's
    filesystem (created by step #3; invisible to the application itself). *)
val tmp_mountpoint : string

(** The application files bind-mounted over the tools filesystem. *)
val config_files : string list

(** [attach ~kernel ~engines ~budget ~config name] performs steps #1–#4
    against the container named (or id-prefixed) [name].  [config] defaults
    to {!Config.default}; a config with a [fault] plan or [retry] policy
    arms the deterministic fault plane over the session's FUSE connection
    and the server's backing syscalls. *)
val attach :
  kernel:Kernel.t ->
  engines:Repro_runtime.Engine.engines ->
  budget:Mem_budget.t ->
  ?config:Config.t ->
  string ->
  (session, Repro_util.Errno.t) result

(** Run one shell command line inside the session; returns the exit code and
    everything written to the pseudo-TTY. *)
val run : session -> string -> int * string

(** Tear the session down: the shell and server exit and the nested
    namespace disappears; the application container is untouched.
    Idempotent: a second call is a no-op. *)
val detach : session -> unit

(** [with_session ~kernel ~engines ~budget ~config name f] — bracket:
    attach, apply [f], always detach (even when [f] raises).  [f] may
    detach early itself; the finalizer's detach is then a no-op. *)
val with_session :
  kernel:Kernel.t ->
  engines:Repro_runtime.Engine.engines ->
  budget:Mem_budget.t ->
  ?config:Config.t ->
  string ->
  (session -> 'a) ->
  ('a, Repro_util.Errno.t) result

(** {2 Fault plane: test hooks and recovery} *)

(** The armed fault plane, when the session was configured with one. *)
val fault : session -> Repro_fault.Fault.t option

(** Test hook: kill the CntrFS server out from under the session.  Queued
    and future requests resolve to [ENOTCONN] (in bounded virtual time)
    until {!recover}. *)
val crash_server : session -> unit

(** Test hook: the server sits on the next request for [ns] virtual
    nanoseconds — long enough to trip an armed deadline. *)
val hang_server : session -> ns:int -> unit

(** Relaunch the CntrFS server after a crash: fork a replacement (inheriting
    the dead server's namespace view), replay the driver's inode map into it
    ({!Repro_cntrfs.Server.restore}), swap the handler, revive the
    connection and reopen the driver's file handles.  The mount, the shell
    and the driver caches survive.  Counts under [session.recoveries]. *)
val recover : session -> unit

(** The container context captured during step #1. *)
val context : session -> Context.t

(** The session's forwarding plane: add socket forwarders to it with
    {!Repro_proxy.Proxy.forward} (the dbus / ssh-agent forwarding of
    §3.2.4).  {!detach} closes it. *)
val proxy : session -> Repro_proxy.Proxy.t

(** The session's observability handle (shared with the kernel): all
    [fuse.*], [cntrfs.*], [vfs.*] and [os.*] metrics of the attach. *)
val obs : session -> Repro_obs.Obs.t

(** Human-readable FUSE traffic summary of the session: request counts by
    kind, transfer volumes, page-cache hit rate, server-side lookups,
    lookup amplification, syscall and context-switch totals — plus a
    faults line (injections, retries, timeouts, recoveries) when the fault
    plane saw any action.  All views over the registry on {!obs}. *)
val report : session -> string
