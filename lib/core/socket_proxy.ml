(* Unix-socket forwarding (§3.2.4).  Sockets seen through CntrFS carry the
   FUSE mount's inode identity, so the kernel cannot associate them with
   the live socket on the other side — connections fail.  The proxy
   listens at the requested path *inside* the nested namespace and relays
   each accepted connection to the real socket in the tools namespace with
   an epoll + splice(2) pump, moving bytes without userspace copies. *)

open Repro_util
open Repro_os

type pair = {
  p_client_fd : int; (* accepted fd, nested-namespace side *)
  p_backend_fd : int; (* connected fd, tools side *)
}

type t = {
  fw_kernel : Kernel.t;
  fw_front_proc : Proc.t; (* in the nested namespace *)
  fw_back_proc : Proc.t; (* in the tools namespace *)
  fw_path : string; (* front path, inside the nested namespace *)
  fw_backend_path : string; (* real socket, tools-namespace side *)
  fw_listen_fd : int;
  fw_epoll_fd : int;
  mutable fw_pairs : pair list;
  mutable fw_closed : bool;
}

let ( let* ) = Result.bind

(* Start forwarding: a listener appears at [path] inside the nested
   namespace, relaying to [backend_path] (default: the same path) in the
   tools namespace.  A distinct front path mirrors how CNTR points clients
   at the proxy (e.g. via DISPLAY) when the real path's socket file already
   exists on the tools side. *)
let forward ~kernel ~front_proc ~back_proc ?backend_path path =
  let backend_path = Option.value ~default:path backend_path in
  let* listen_fd = Kernel.socket_listen kernel front_proc path in
  let epoll_fd = Kernel.epoll_create kernel front_proc in
  let* () =
    Kernel.epoll_add kernel front_proc ~epfd:epoll_fd ~fd:listen_fd
      ~interest:{ Epoll.want_in = true; want_out = false }
  in
  Ok
    {
      fw_kernel = kernel;
      fw_front_proc = front_proc;
      fw_back_proc = back_proc;
      fw_path = path;
      fw_backend_path = backend_path;
      fw_listen_fd = listen_fd;
      fw_epoll_fd = epoll_fd;
      fw_pairs = [];
      fw_closed = false;
    }

let accept_new t =
  let k = t.fw_kernel in
  let rec go made =
    match Kernel.socket_accept k t.fw_front_proc t.fw_listen_fd with
    | Ok client_fd -> (
        match Kernel.socket_connect k t.fw_back_proc t.fw_backend_path with
        | Ok backend_fd ->
            ignore
              (Kernel.epoll_add k t.fw_front_proc ~epfd:t.fw_epoll_fd ~fd:client_fd
                 ~interest:{ Epoll.want_in = true; want_out = false });
            t.fw_pairs <- { p_client_fd = client_fd; p_backend_fd = backend_fd } :: t.fw_pairs;
            go (made + 1)
        | Error _ ->
            (* no backend: drop the client *)
            ignore (Kernel.close k t.fw_front_proc client_fd);
            go made)
    | Error _ -> made
  in
  go 0

(* Move bytes in both directions for every pair; returns bytes moved. *)
let relay t =
  let k = t.fw_kernel in
  let moved = ref 0 in
  List.iter
    (fun pair ->
      (* client -> backend: splice from the front process's fd... both fds
         live in different processes, so relay via explicit read/write on
         each side's fd table, spliced through a kernel pipe. *)
      let pump ~src_proc ~src_fd ~dst_proc ~dst_fd =
        let rec go () =
          match Kernel.read k src_proc src_fd ~len:65536 with
          | Ok data when data <> "" -> (
              Clock.consume_int k.Kernel.clock k.Kernel.cost.Cost.splice_setup_ns;
              match Kernel.write k dst_proc dst_fd data with
              | Ok n ->
                  moved := !moved + n;
                  go ()
              | Error _ -> ())
          | _ -> ()
        in
        go ()
      in
      pump ~src_proc:t.fw_front_proc ~src_fd:pair.p_client_fd ~dst_proc:t.fw_back_proc
        ~dst_fd:pair.p_backend_fd;
      pump ~src_proc:t.fw_back_proc ~src_fd:pair.p_backend_fd ~dst_proc:t.fw_front_proc
        ~dst_fd:pair.p_client_fd)
    t.fw_pairs;
  !moved

(* One event-loop turn: poll, accept, relay.  Returns true if any work was
   done; callers pump until quiescent. *)
let pump t =
  if t.fw_closed then false
  else begin
    let _events = Result.value ~default:[] (Kernel.epoll_wait t.fw_kernel t.fw_front_proc t.fw_epoll_fd) in
    let accepted = accept_new t in
    let moved = relay t in
    accepted > 0 || moved > 0
  end

let pump_until_quiet t =
  let rec go n = if n > 0 && pump t then go (n - 1) in
  go 64

let connection_count t = List.length t.fw_pairs

let close t =
  if not t.fw_closed then begin
    t.fw_closed <- true;
    let k = t.fw_kernel in
    List.iter
      (fun pair ->
        ignore (Kernel.close k t.fw_front_proc pair.p_client_fd);
        ignore (Kernel.close k t.fw_back_proc pair.p_backend_fd))
      t.fw_pairs;
    t.fw_pairs <- [];
    ignore (Kernel.close k t.fw_front_proc t.fw_listen_fd)
  end
