(* A small POSIX-ish shell: tokenization with quoting, PATH resolution,
   output redirection, builtins.  This is the interactive shell CNTR starts
   inside the nested namespace (step #4); tools it launches resolve through
   CntrFS while the application filesystem stays reachable under
   /var/lib/cntr. *)

open Repro_util
open Repro_os

let ( let* ) = Result.bind

(* --- tokenizer: whitespace-separated, double quotes group ---------------- *)

let tokenize line =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let in_quotes = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '"' -> in_quotes := not !in_quotes
      | ' ' | '\t' when not !in_quotes -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

(* $VAR / ${VAR} expansion against the process environment *)
let expand_vars proc token =
  let buf = Buffer.create (String.length token) in
  let n = String.length token in
  let is_var_char c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' in
  let rec go i =
    if i >= n then ()
    else if token.[i] = '$' && i + 1 < n then begin
      if token.[i + 1] = '{' then begin
        match String.index_from_opt token (i + 2) '}' with
        | Some close ->
            let name = String.sub token (i + 2) (close - i - 2) in
            Buffer.add_string buf (Option.value ~default:"" (Repro_os.Proc.getenv proc name));
            go (close + 1)
        | None ->
            Buffer.add_char buf '$';
            go (i + 1)
      end
      else begin
        let j = ref (i + 1) in
        while !j < n && is_var_char token.[!j] do incr j done;
        if !j = i + 1 then begin
          Buffer.add_char buf '$';
          go (i + 1)
        end
        else begin
          let name = String.sub token (i + 1) (!j - i - 1) in
          Buffer.add_string buf (Option.value ~default:"" (Repro_os.Proc.getenv proc name));
          go !j
        end
      end
    end
    else begin
      Buffer.add_char buf token.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* split a token list on "|" into pipeline stages *)
let split_pipeline tokens =
  let rec go cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | "|" :: rest -> go [] (List.rev cur :: acc) rest
    | t :: rest -> go (t :: cur) acc rest
  in
  go [] [] tokens

(* split off `> file` / `>> file` redirections *)
type redirect = No_redirect | Truncate of string | Append of string

let parse_redirect tokens =
  let rec go acc = function
    | [] -> (List.rev acc, No_redirect)
    | ">" :: file :: rest -> (List.rev acc @ rest, Truncate file)
    | ">>" :: file :: rest -> (List.rev acc @ rest, Append file)
    | t :: rest -> go (t :: acc) rest
  in
  go [] tokens

(* --- PATH resolution -------------------------------------------------------- *)

let resolve_binary kernel proc name =
  if String.contains name '/' then
    match Kernel.access kernel proc name Repro_vfs.Types.x_ok with
    | Ok () -> Ok name
    | Error e -> Error e
  else
    let path = Option.value ~default:"/usr/bin:/bin" (Proc.getenv proc "PATH") in
    let dirs = String.split_on_char ':' path in
    let rec search = function
      | [] -> Error Errno.ENOENT
      | dir :: rest ->
          let candidate = Pathx.concat dir name in
          (match Kernel.access kernel proc candidate Repro_vfs.Types.x_ok with
          | Ok () -> Ok candidate
          | Error _ -> search rest)
    in
    search dirs

(* --- evaluation -------------------------------------------------------------- *)

(* Run one command line as [proc].  Supports `a | b | c` pipelines (each
   stage's stdout feeds the next stage's stdin through a kernel pipe) and a
   trailing `>`/`>>` redirect.  Output goes to the process's fd 1 (or the
   redirect target).  Returns the exit code of the last stage. *)
let rec eval kernel proc line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok 0
  else begin
    let tokens = List.map (expand_vars proc) (tokenize line) in
    let tokens, redirect = parse_redirect tokens in
    let stages = split_pipeline tokens in
    match stages with
    | [] | [ [] ] -> Ok 0
    | _ ->
        let saved_stdout = Proc.fd proc 1 in
        let saved_stdin = Proc.fd proc 0 in
        let restore_std () =
          (match saved_stdout with
          | Some e -> Hashtbl.replace proc.Proc.fds 1 e
          | None -> Hashtbl.remove proc.Proc.fds 1);
          match saved_stdin with
          | Some e -> Hashtbl.replace proc.Proc.fds 0 e
          | None -> Hashtbl.remove proc.Proc.fds 0
        in
        (* final-stage stdout: redirect target or the saved stdout *)
        let* set_final_stdout =
          match redirect with
          | No_redirect -> Ok (fun () -> restore_out_only saved_stdout proc)
          | Truncate file | Append file ->
              let flags =
                Repro_vfs.Types.O_CREAT :: Repro_vfs.Types.O_WRONLY
                ::
                (match redirect with
                | Append _ -> [ Repro_vfs.Types.O_APPEND ]
                | _ -> [ Repro_vfs.Types.O_TRUNC ])
              in
              let* fd = Kernel.open_ kernel proc file flags ~mode:0o644 in
              let entry = Option.get (Proc.fd proc fd) in
              Hashtbl.remove proc.Proc.fds fd;
              Ok (fun () -> Hashtbl.replace proc.Proc.fds 1 entry)
        in
        let rec run_stages stages code =
          match stages with
          | [] -> Ok code
          | stage :: rest -> (
              let is_last = rest = [] in
              (* stdout for this stage: a fresh pipe unless last *)
              let next_stdin =
                if is_last then begin
                  set_final_stdout ();
                  None
                end
                else begin
                  let p = Pipe.create ~capacity:(1024 * 1024) () in
                  Hashtbl.replace proc.Proc.fds 1 (Proc.Pipe_w p);
                  Some p
                end
              in
              let result =
                match stage with
                | [] -> Ok 0
                | cmd :: args -> run_command kernel proc cmd args
              in
              (* wire this stage's output to the next stage's stdin *)
              (match next_stdin with
              | Some p ->
                  Pipe.close_writer p;
                  Hashtbl.replace proc.Proc.fds 0 (Proc.Pipe_r p)
              | None -> ());
              match result with
              | Ok c -> run_stages rest c
              | Error _ as e -> e)
        in
        let result = run_stages stages 0 in
        (* drop a redirect target's description if we installed one *)
        (match (redirect, Proc.fd proc 1) with
        | (Truncate _ | Append _), Some (Proc.File f) -> Kernel.release_file f
        | _ -> ());
        restore_std ();
        result
  end

and restore_out_only saved proc =
  match saved with
  | Some e -> Hashtbl.replace proc.Proc.fds 1 e
  | None -> Hashtbl.remove proc.Proc.fds 1

and print kernel proc s = ignore (Kernel.write kernel proc 1 s)

and run_command kernel proc cmd args =
  match cmd with
  (* builtins *)
  | "echo" ->
      print kernel proc (String.concat " " args ^ "\n");
      Ok 0
  | "cd" -> (
      let dir = match args with d :: _ -> d | [] -> "/" in
      match Kernel.chdir kernel proc dir with
      | Ok () -> Ok 0
      | Error e ->
          print kernel proc ("cd: " ^ Errno.message e ^ "\n");
          Ok 1)
  | "export" ->
      List.iter
        (fun a ->
          match String.index_opt a '=' with
          | Some i ->
              Proc.setenv proc (String.sub a 0 i)
                (String.sub a (i + 1) (String.length a - i - 1))
          | None -> ())
        args;
      Ok 0
  | "exit" -> Ok (match args with c :: _ -> int_of_string_opt c |> Option.value ~default:0 | [] -> 0)
  | "true" -> Ok 0
  | "false" -> Ok 1
  | _ -> (
      match
        match resolve_binary kernel proc cmd with
        | Ok path -> Ok path
        | Error _ when not (String.contains cmd '/') -> (
            (* busybox systems: fall back to the multiplexed binary *)
            match Kernel.access kernel proc "/bin/busybox" Repro_vfs.Types.x_ok with
            | Ok () -> Ok "/bin/busybox"
            | Error _ -> Error Errno.ENOENT)
        | Error e -> Error e
      with
      | Error e ->
          print kernel proc (Printf.sprintf "sh: %s: command not found (%s)\n" cmd (Errno.to_string e));
          Ok 127
      | Ok path -> (
          match Kernel.exec kernel proc path (cmd :: args) with
          | Ok code -> Ok code
          | Error e ->
              print kernel proc
                (Printf.sprintf "sh: %s: cannot execute (%s)\n" cmd (Errno.to_string e));
              Ok 126))

(* Run a script: evaluate line by line, stop on the first hard error. *)
let eval_script kernel proc text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun acc line ->
      let* _code = acc in
      eval kernel proc line)
    (Ok 0) lines
