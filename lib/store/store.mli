(** A content-addressed blob store with chunk-level dedup.

    Blobs (image layers) register a {!Chunker} manifest under a key; the
    store keeps one refcounted entry per unique chunk digest.  Logical
    bytes count every reference (what a registry would hold with no
    dedup); physical bytes count unique live chunks once.  Payloads are
    never stored — the store is the index.

    Metrics (when created with a registry): [<prefix>.chunks.total],
    [<prefix>.chunks.unique], [<prefix>.bytes.logical],
    [<prefix>.bytes.physical], [<prefix>.gc.collected] counters and the
    derived [<prefix>.dedup_ratio] gauge; [prefix] defaults to ["store"]. *)

type t

val create : ?metrics:Repro_obs.Metrics.t -> ?prefix:string -> unit -> t

(** Register one more reference to blob [key].  The first add records the
    manifest and references every chunk; later adds bump refcounts without
    re-walking content. *)
val add : t -> key:string -> Chunker.chunk list -> unit

(** Is blob [key] present? *)
val mem : t -> string -> bool

val manifest : t -> string -> Chunker.chunk list option

(** Is a live chunk with this digest present? *)
val chunk_present : t -> string -> bool

(** Unique chunks of the manifest missing from the store — what a transfer
    must ship.  Duplicate digests within the manifest count once. *)
val missing : t -> Chunker.chunk list -> Chunker.chunk list

(** Drop one reference to blob [key] (and to each of its chunks).  Chunks
    whose refcount reaches zero stay until {!gc}. *)
val release : t -> string -> unit

(** Sweep dead chunks; returns how many were collected. *)
val gc : t -> int

(** Drop everything (a cache flush, not a gc — [gc.collected] is
    unchanged). *)
val reset : t -> unit

val logical_bytes : t -> int
val physical_bytes : t -> int

(** Chunk references across all blob adds. *)
val total_chunks : t -> int

val unique_chunks : t -> int
val blobs : t -> int
val gc_collected : t -> int

(** [logical / physical]; 0 when empty. *)
val dedup_ratio : t -> float
