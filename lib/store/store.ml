(* A content-addressed blob store with chunk-level dedup.

   Blobs (image layers, in practice) are registered under a key with a
   chunk manifest from {!Chunker}; the store keeps one refcounted entry per
   unique chunk digest.  "Logical" bytes count every reference — what the
   registry would hold with no dedup; "physical" bytes count unique chunks
   once — what it actually holds.  Refcounts reach zero when blobs are
   released; [gc] sweeps the dead chunks.

   Chunk payloads are never stored (the simulated world keeps content as
   descriptors); the store is the index: digests, sizes, refcounts. *)

open Repro_obs

type chunk_info = { ci_size : int; mutable ci_refs : int }

type blob = { b_manifest : Chunker.chunk list; b_bytes : int; mutable b_refs : int }

type t = {
  chunks : (string, chunk_info) Hashtbl.t; (* digest -> info *)
  blobs : (string, blob) Hashtbl.t; (* key -> manifest *)
  mutable logical : int; (* bytes across all references *)
  mutable physical : int; (* bytes of unique live chunks *)
  mutable total_refs : int; (* chunk references across all blob adds *)
  mutable collected : int; (* chunks swept by gc, cumulative *)
  (* metrics mirrors (no-ops when created without a registry) *)
  m_total : Metrics.counter option;
  m_unique : Metrics.counter option;
  m_logical : Metrics.counter option;
  m_physical : Metrics.counter option;
  m_collected : Metrics.counter option;
}

let madd m n = match m with Some c -> Metrics.add c n | None -> ()

let create ?metrics ?(prefix = "store") () =
  let t =
    {
      chunks = Hashtbl.create 4096;
      blobs = Hashtbl.create 256;
      logical = 0;
      physical = 0;
      total_refs = 0;
      collected = 0;
      m_total = Option.map (fun m -> Metrics.counter m (prefix ^ ".chunks.total")) metrics;
      m_unique = Option.map (fun m -> Metrics.counter m (prefix ^ ".chunks.unique")) metrics;
      m_logical = Option.map (fun m -> Metrics.counter m (prefix ^ ".bytes.logical")) metrics;
      m_physical = Option.map (fun m -> Metrics.counter m (prefix ^ ".bytes.physical")) metrics;
      m_collected = Option.map (fun m -> Metrics.counter m (prefix ^ ".gc.collected")) metrics;
    }
  in
  Option.iter
    (fun m ->
      Metrics.register_derived m (prefix ^ ".dedup_ratio") (fun () ->
          if t.physical = 0 then 0. else float_of_int t.logical /. float_of_int t.physical))
    metrics;
  t

let ref_chunk t (c : Chunker.chunk) =
  (match Hashtbl.find_opt t.chunks c.Chunker.digest with
  | Some info -> info.ci_refs <- info.ci_refs + 1
  | None ->
      Hashtbl.replace t.chunks c.Chunker.digest { ci_size = c.Chunker.size; ci_refs = 1 };
      t.physical <- t.physical + c.Chunker.size;
      madd t.m_unique 1;
      madd t.m_physical c.Chunker.size);
  t.total_refs <- t.total_refs + 1;
  madd t.m_total 1

let unref_chunk t (c : Chunker.chunk) =
  (match Hashtbl.find_opt t.chunks c.Chunker.digest with
  | Some info -> info.ci_refs <- info.ci_refs - 1
  | None -> ());
  t.total_refs <- t.total_refs - 1;
  madd t.m_total (-1)

(* Register one more reference to blob [key].  The first add records the
   manifest and references every chunk; later adds of the same key bump
   refcounts without re-walking content (push of an already-known layer). *)
let add t ~key manifest =
  let bytes = Chunker.manifest_bytes manifest in
  (match Hashtbl.find_opt t.blobs key with
  | Some blob -> blob.b_refs <- blob.b_refs + 1
  | None -> Hashtbl.replace t.blobs key { b_manifest = manifest; b_bytes = bytes; b_refs = 1 });
  List.iter (ref_chunk t) manifest;
  t.logical <- t.logical + bytes;
  madd t.m_logical bytes

let mem t key = Hashtbl.mem t.blobs key

let manifest t key = Option.map (fun b -> b.b_manifest) (Hashtbl.find_opt t.blobs key)

let chunk_present t digest =
  match Hashtbl.find_opt t.chunks digest with Some i -> i.ci_refs > 0 | None -> false

(* Unique chunks of [manifest] missing from the store.  Duplicate digests
   within the manifest count once — a transfer ships each chunk once. *)
let missing t manifest =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (c : Chunker.chunk) ->
      if chunk_present t c.Chunker.digest || Hashtbl.mem seen c.Chunker.digest then false
      else begin
        Hashtbl.replace seen c.Chunker.digest ();
        true
      end)
    manifest

let release t key =
  match Hashtbl.find_opt t.blobs key with
  | None -> ()
  | Some blob ->
      blob.b_refs <- blob.b_refs - 1;
      List.iter (unref_chunk t) blob.b_manifest;
      t.logical <- t.logical - blob.b_bytes;
      madd t.m_logical (-blob.b_bytes);
      if blob.b_refs <= 0 then Hashtbl.remove t.blobs key

(* Sweep dead chunks (refcount <= 0); returns how many were collected. *)
let gc t =
  let dead =
    Hashtbl.fold (fun d info acc -> if info.ci_refs <= 0 then (d, info) :: acc else acc) t.chunks []
  in
  List.iter
    (fun (d, info) ->
      Hashtbl.remove t.chunks d;
      t.physical <- t.physical - info.ci_size;
      madd t.m_unique (-1);
      madd t.m_physical (-info.ci_size))
    dead;
  let n = List.length dead in
  t.collected <- t.collected + n;
  madd t.m_collected n;
  n

(* Drop everything (a host cache flush, not a gc: [gc.collected] does not
   move).  Metric mirrors return to zero. *)
let reset t =
  madd t.m_total (-t.total_refs);
  madd t.m_unique (-(Hashtbl.length t.chunks));
  madd t.m_logical (-t.logical);
  madd t.m_physical (-t.physical);
  Hashtbl.reset t.chunks;
  Hashtbl.reset t.blobs;
  t.logical <- 0;
  t.physical <- 0;
  t.total_refs <- 0

let logical_bytes t = t.logical
let physical_bytes t = t.physical
let total_chunks t = t.total_refs
let unique_chunks t = Hashtbl.length t.chunks
let blobs t = Hashtbl.length t.blobs
let gc_collected t = t.collected

let dedup_ratio t =
  if t.physical = 0 then 0. else float_of_int t.logical /. float_of_int t.physical
