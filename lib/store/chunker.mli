(** Content-defined chunking: a gear rolling hash with FastCDC-style
    min/avg/max bounds.  Boundaries depend only on the bytes, so identical
    byte runs in different blobs cut into identical chunks — the property
    the dedup {!Store} is built on.  Deterministic: the gear table is
    seeded, and the hash is never reset at cut points, so a single-byte
    edit perturbs only a bounded window of chunks. *)

type params = {
  min_size : int;  (** no cut before this many bytes into a chunk *)
  mask_bits : int;  (** cut when the low [mask_bits] hash bits are zero *)
  max_size : int;  (** forced cut at this size *)
}

(** 4 KiB / 13 bits (~8 KiB expected) / 64 KiB. *)
val default_params : params

(** A chunk descriptor: the digest of the chunk's bytes and its size.
    Payloads themselves are never stored — the simulated world keeps
    content as descriptors. *)
type chunk = { digest : string; size : int }

(** Exclusive end offset of every chunk; the last element is the string
    length.  [[]] for the empty string.  Prefix-stable: cuts of [s] below
    [n] equal the cuts of any extension of [s] below [n]. *)
val cut_points : ?params:params -> string -> int list

(** The chunk byte strings themselves; concatenating them yields the
    input. *)
val split : ?params:params -> string -> string list

val chunks_of_string : ?params:params -> string -> chunk list

(** [chunks_prefixed_uniform ~prefix ~fill ~total ()] equals
    [chunks_of_string (prefix ^ String.make (total - length prefix) fill)]
    but runs in O(prefix + max_size): once the rolling window passes the
    prefix the hash is constant and cuts become periodic, so the tail is
    emitted analytically.  This is how multi-megabyte [Filler]/[Binary]
    descriptors are chunked without rendering them. *)
val chunks_prefixed_uniform :
  ?params:params -> prefix:string -> fill:char -> total:int -> unit -> chunk list

(** Sum of chunk sizes. *)
val manifest_bytes : chunk list -> int
