(* Content-defined chunking (gear rolling hash, FastCDC-style min/avg/max
   bounds).  Chunk boundaries depend only on the bytes, not on the
   container, so identical runs of bytes inside different blobs always cut
   into identical chunks — the property the dedup store is built on.

   Two details matter for the rest of the system:

   - The rolling hash is NOT reset at cut points, so the cut decision at
     byte [p] depends only on the last [mask_bits] bytes (each byte's gear
     value is shifted left once per subsequent byte, so it leaves the low
     [mask_bits] bits after [mask_bits] steps).  A single-byte edit can
     therefore only perturb cuts in a bounded window, and chunk streams
     re-synchronize — the qcheck property tests pin this.

   - Cut positions are prefix-stable: the cuts of [s] within [0, n) equal
     the cuts of any extension of [s] within [0, n).  [chunks_prefixed_uniform]
     exploits this to chunk descriptor-backed content (a short header
     followed by megabytes of one repeated pad byte) without materializing
     it: beyond the settling window the hash is constant, so cuts become
     periodic and the tail is emitted analytically. *)

open Repro_util

type params = {
  min_size : int; (* no cut before this many bytes into a chunk *)
  mask_bits : int; (* cut when the low mask_bits bits of the hash are zero *)
  max_size : int; (* forced cut at this size *)
}

let default_params = { min_size = 4096; mask_bits = 13; max_size = 65536 }

let () =
  assert (default_params.min_size < default_params.max_size)

type chunk = { digest : string; size : int }

(* Deterministic gear table: one SplitMix64 draw per byte value. *)
let gear =
  lazy
    (let rng = Rng.create ~seed:0x6765_6172 in
     Array.init 256 (fun _ -> Int64.to_int (Rng.next_int64 rng) land max_int))

let validate p =
  if p.min_size <= 0 || p.max_size <= p.min_size || p.mask_bits <= 0 then
    invalid_arg "Chunker: need 0 < min_size < max_size and mask_bits > 0"

(* Exclusive end offsets of every chunk of [s]; the final offset is
   [String.length s].  Empty string -> []. *)
let cut_points ?(params = default_params) s =
  validate params;
  let g = Lazy.force gear in
  let cutmask = (1 lsl params.mask_bits) - 1 in
  let n = String.length s in
  let cuts = ref [] in
  let start = ref 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    h := ((!h lsl 1) + g.(Char.code (String.unsafe_get s i))) land max_int;
    let pos = i + 1 in
    if
      (pos - !start >= params.min_size && !h land cutmask = 0)
      || pos - !start = params.max_size
    then begin
      cuts := pos :: !cuts;
      start := pos
    end
  done;
  if n > 0 && !start < n then cuts := n :: !cuts;
  List.rev !cuts

let split ?params s =
  let cuts = cut_points ?params s in
  let chunks, _ =
    List.fold_left (fun (acc, prev) cut -> (String.sub s prev (cut - prev) :: acc, cut)) ([], 0) cuts
  in
  List.rev chunks

let chunk_of_bytes b = { digest = Digest.string b; size = String.length b }

let chunks_of_string ?params s = List.map chunk_of_bytes (split ?params s)

(* [chunks_prefixed_uniform ~prefix ~fill ~total] == [chunks_of_string
   (prefix ^ String.make (total - length prefix) fill)], in
   O(prefix + max_size) instead of O(total).

   After the rolling window (mask_bits bytes) has passed the prefix, the
   hash is a constant H(fill): either H qualifies at every position (cuts
   every min_size) or never (forced cuts every max_size).  We chunk a
   sample long enough to reach that steady state, keep its cuts verbatim
   (prefix stability), and extrapolate the periodic tail. *)
let chunks_prefixed_uniform ?(params = default_params) ~prefix ~fill ~total () =
  validate params;
  let plen = String.length prefix in
  if total < plen then invalid_arg "Chunker.chunks_prefixed_uniform: total < prefix";
  let settle = (4 * params.max_size) + params.mask_bits in
  if total <= plen + settle + params.max_size then
    chunks_of_string ~params (prefix ^ String.make (total - plen) fill)
  else begin
    let sample = prefix ^ String.make settle fill in
    let slen = String.length sample in
    let cuts = List.filter (fun c -> c < slen) (cut_points ~params sample) in
    (* last three cuts are deep in the uniform region: equal spacing *)
    let rec last3 = function
      | [ a; b; c ] -> (a, b, c)
      | _ :: tl -> last3 tl
      | [] -> assert false
    in
    let c0, c1, c2 = last3 cuts in
    let period = c2 - c1 in
    assert (c1 - c0 = period && c2 > plen + params.mask_bits);
    (* head: the sample's chunks up to c2 are exact chunks of the full blob *)
    let head, _ =
      List.fold_left
        (fun (acc, prev) cut -> (chunk_of_bytes (String.sub sample prev (cut - prev)) :: acc, cut))
        ([], 0)
        (List.filter (fun c -> c <= c2) cuts)
    in
    let head = List.rev head in
    (* tail: identical uniform chunks of [period] bytes, then the remainder *)
    let remaining = total - c2 in
    let n_body = remaining / period in
    let rem = remaining mod period in
    let body_chunk = chunk_of_bytes (String.make period fill) in
    let body = List.init n_body (fun _ -> body_chunk) in
    let tail = if rem = 0 then body else body @ [ chunk_of_bytes (String.make rem fill) ] in
    head @ tail
  end

let manifest_bytes chunks = List.fold_left (fun acc c -> acc + c.size) 0 chunks
