(** Deterministic discrete-event task scheduler.

    Cooperative tasks (OCaml effect-handler fibers) multiplex onto the one
    virtual clock.  Each task has its own timeline: while a task runs, the
    clock holds that task's current time, so [Clock.consume] charges work to
    the running task.  Tasks interleave only at explicit wait points (ivar
    reads, mutex/condvar waits, sleeps); wait-free segments of different
    tasks overlap in virtual time, so concurrency is expressed as
    max-of-timelines rather than sum-of-costs.

    Determinism: events are ordered by (virtual time, submission sequence),
    so identical inputs replay identical interleavings. *)

type t

exception Deadlock of string
(** Raised when a wait can never be satisfied (empty event queue). *)

val create : clock:Repro_util.Clock.t -> t
val clock : t -> Repro_util.Clock.t

val current_id : unit -> int
(** Fiber id of the caller; [0] at top level (outside any task). *)

val in_task : unit -> bool

val pending_events : t -> int

(** {1 Ivars} *)

type 'a ivar

val ivar : unit -> 'a ivar
val is_filled : 'a ivar -> bool

val fill : t -> 'a ivar -> 'a -> unit
(** Fill at the caller's current time; wakes all readers.  Raises
    [Invalid_argument] when already filled. *)

val read : t -> 'a ivar -> 'a
(** Block until filled.  A task parks; top-level code drives the event loop.
    The caller's clock lands no earlier than the fill time. *)

(** {1 Tasks} *)

type 'a task

val spawn : t -> (unit -> 'a) -> 'a task
(** Start a task at the caller's current time, on its own timeline. *)

val await : t -> 'a task -> 'a
(** Join a task; re-raises the task's exception, if any. *)

val run : t -> (unit -> 'a) -> 'a
(** [spawn] + [await]. *)

val drive_main : t -> (unit -> bool) -> unit
(** Drive the event loop until the predicate holds; top-level callers only.
    Raises {!Deadlock} when the queue drains first. *)

(** {1 Mutex}

    Mesa-style barging lock, reentrant per fiber.  Top-level code drives the
    event loop instead of parking.  Critical sections never overlap in
    virtual time: completed sections are committed as hold intervals, and
    acquisition settles the taker to the earliest instant not inside any
    committed hold — a taker arriving in a gap before an already-committed
    hold acquires at its own time. *)

type mutex

val mutex : unit -> mutex
val lock : t -> mutex -> unit
val unlock : t -> mutex -> unit
val with_lock : t -> mutex -> (unit -> 'a) -> 'a

(** {1 Condition variables} *)

type cond

val cond : unit -> cond

val waiters : cond -> int
(** Number of fibers currently parked on [cv]. *)

val park : t -> cond -> unit
(** Park on [cv] without a mutex; an unlock immediately followed by [park]
    cannot miss a wakeup (tasks switch only at effects).  Tasks only. *)

val wait : t -> cond -> mutex -> unit
(** Atomically release the mutex and park; relocks before returning.  The
    lock must be held at depth 1.  Tasks only. *)

val signal : t -> cond -> int
(** Wake the head waiter; returns the number woken (0 or 1). *)

val broadcast : t -> cond -> int
(** Wake every waiter; returns the number woken so callers can charge the
    wait-list walk. *)

val yield : t -> unit
(** Reschedule the caller at its current time, behind already-queued events.
    Long-running task loops yield at natural preemption points so event
    order tracks virtual-time order.  No-op at top level. *)

val sleep_ns : t -> int -> unit
