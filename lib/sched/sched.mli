(** Deterministic discrete-event task scheduler.

    Cooperative tasks (OCaml effect-handler fibers) multiplex onto the one
    virtual clock.  Each task has its own timeline: while a task runs, the
    clock holds that task's current time, so [Clock.consume] charges work to
    the running task.  Tasks interleave only at explicit wait points (ivar
    reads, mutex/condvar waits, sleeps); wait-free segments of different
    tasks overlap in virtual time, so concurrency is expressed as
    max-of-timelines rather than sum-of-costs.

    Determinism: events are ordered by (virtual time, submission sequence),
    so identical inputs replay identical interleavings. *)

type t

exception Deadlock of string
(** Raised when a wait can never be satisfied (empty event queue). *)

val create : clock:Repro_util.Clock.t -> t
val clock : t -> Repro_util.Clock.t

val current_id : unit -> int
(** Fiber id of the caller; [0] at top level (outside any task). *)

val in_task : unit -> bool

val pending_events : t -> int

(** {1 Ivars} *)

type 'a ivar

val ivar : unit -> 'a ivar
val is_filled : 'a ivar -> bool

val fill : t -> 'a ivar -> 'a -> unit
(** Fill at the caller's current time; wakes all readers.  Raises
    [Invalid_argument] when already filled. *)

val read : t -> 'a ivar -> 'a
(** Block until filled.  A task parks; top-level code drives the event loop.
    The caller's clock lands no earlier than the fill time. *)

(** {1 Tasks} *)

type 'a task

val spawn : t -> (unit -> 'a) -> 'a task
(** Start a task at the caller's current time, on its own timeline. *)

val await : t -> 'a task -> 'a
(** Join a task; re-raises the task's exception, if any. *)

val run : t -> (unit -> 'a) -> 'a
(** [spawn] + [await]. *)

val drive_main : t -> (unit -> bool) -> unit
(** Drive the event loop until the predicate holds; top-level callers only.
    Raises {!Deadlock} when the queue drains first. *)

(** {1 Mutex}

    Mesa-style barging lock, reentrant per fiber.  Top-level code drives the
    event loop instead of parking.  Critical sections never overlap in
    virtual time: completed sections are committed as hold intervals, and
    acquisition settles the taker to the earliest instant not inside any
    committed hold — a taker arriving in a gap before an already-committed
    hold acquires at its own time. *)

type mutex

val mutex : unit -> mutex
val lock : t -> mutex -> unit
val unlock : t -> mutex -> unit
val with_lock : t -> mutex -> (unit -> 'a) -> 'a

(** {1 Condition variables} *)

type cond

val cond : unit -> cond

val waiters : cond -> int
(** Number of fibers currently parked on [cv]. *)

val park : t -> cond -> unit
(** Park on [cv] without a mutex; an unlock immediately followed by [park]
    cannot miss a wakeup (tasks switch only at effects).  Tasks only. *)

val wait : t -> cond -> mutex -> unit
(** Atomically release the mutex and park; relocks before returning.  The
    lock must be held at depth 1.  Tasks only. *)

val signal : t -> cond -> int
(** Wake the head waiter; returns the number woken (0 or 1). *)

val broadcast : t -> cond -> int
(** Wake every waiter; returns the number woken so callers can charge the
    wait-list walk. *)

val yield : t -> unit
(** Reschedule the caller at its current time, behind already-queued events.
    Long-running task loops yield at natural preemption points so event
    order tracks virtual-time order.  No-op at top level. *)

val sleep_ns : t -> int -> unit

(** {1 Two-list FIFO deque}

    Amortized O(1) push/pop at both ends; backs every scheduler wait list
    (replacing the old quadratic [xs @ [x]] appends) and the per-worker
    run queues of {!Ws}. *)

module Dq : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push_back : 'a t -> 'a -> unit
  val push_front : 'a t -> 'a -> unit
  val peek_front : 'a t -> 'a option
  val pop_front : 'a t -> 'a option
  val pop_back : 'a t -> 'a option

  val drain : 'a t -> 'a list
  (** Oldest-first snapshot; empties the deque. *)
end

(** {1 Work-stealing pool state}

    Per-worker local deques with LIFO local push and FIFO steal, plus
    deterministic victim selection (per-worker SplitMix64 streams mixed
    with the virtual clock) and cost-scored submission placement (expected
    pickup delay, with a LIFO parked stack for the wake case).  Pure
    bookkeeping: the client owns the locks and charges lock/wake/steal-walk
    costs itself. *)

module Ws : sig
  type 'a t

  val create : ?seed:int -> unit -> 'a t

  val ensure : 'a t -> int -> unit
  (** Grow the pool to at least [n] worker queues. *)

  val size : 'a t -> int

  val depth : 'a t -> int -> int
  (** Queue length of one worker. *)

  val queued : 'a t -> int
  (** Total items across all queues. *)

  val submit_target : 'a t -> now:int64 -> wake_ns:int -> item_ns:int -> int * bool
  (** Choose the worker with the lowest expected pickup delay for a new
      submission at virtual time [now].  A worker whose {!avail} is ahead
      of [now] is semantically still mid-item (its fiber merely ran ahead
      in event order) and picks the entry up at [avail] for free; one
      whose [avail] has passed is idle and costs a wake ([wake_ns]); each
      queued entry adds one expected service time ([item_ns]).  Ties go
      to the most recently parked worker (LIFO), then the lowest id.  A
      parked winner is popped off the parked stack (the caller is
      expected to wake it); the boolean is the was-parked hint. *)

  val set_avail : 'a t -> int -> int64 -> unit
  (** Record the virtual time at which worker [i]'s current work segment
      ends (it can absorb submissions stamped earlier with no wake). *)

  val avail : 'a t -> int -> int64

  val set_parked : 'a t -> int -> at:int64 -> unit
  (** Push worker [i] onto the parked stack; [at] (the virtual park time)
      also becomes its {!avail}. *)

  val clear_parked : 'a t -> int -> unit

  val push : 'a t -> int -> 'a -> unit
  (** Submission entry: back of worker [i]'s queue (owner drains FIFO). *)

  val push_local : 'a t -> int -> 'a -> unit
  (** Locally-spawned work: front of worker [i]'s queue (owner LIFO). *)

  val peek : 'a t -> int -> 'a option

  val pop : 'a t -> int -> 'a option
  (** Owner pop (front); counts a local hit on success. *)

  val steal_from : 'a t -> victim:int -> 'a option
  (** FIFO steal: the oldest entry of [victim]'s queue; counts a steal on
      success. *)

  val steal_failed : 'a t -> unit
  (** Record one failed steal walk. *)

  val victim_order : 'a t -> thief:int -> now:int64 -> int list
  (** Deterministic cyclic walk over the other workers; the starting point
      mixes [thief]'s private SplitMix64 stream with [now]. *)

  val drain_all : 'a t -> 'a list
  (** Oldest-first snapshot of everything queued; empties all queues. *)

  val steals : 'a t -> int
  val steal_fails : 'a t -> int
  val local_hits : 'a t -> int
end
