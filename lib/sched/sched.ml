(* Deterministic discrete-event task scheduler.

   The simulation multiplexes cooperative tasks (effect-handler fibers) onto
   the single virtual clock.  Each task carries its own timeline: when a task
   runs, the clock holds *that task's* current time, and advancing the clock
   with [Clock.consume] charges work to the running task only.  Tasks
   interleave exclusively at explicit wait points (ivar reads, mutex/condvar
   waits, sleeps), so two tasks whose wait-free segments overlap in virtual
   time genuinely overlap: total elapsed time is the max of their timelines,
   not the sum.

   Events are keyed by (time, sequence-number); the sequence number breaks
   ties in submission order, making every run deterministic regardless of
   how task timelines interleave. *)

open Repro_util

module Key = struct
  type t = int64 * int

  let compare (a1, s1) (a2, s2) =
    match Int64.compare a1 a2 with 0 -> compare (s1 : int) s2 | c -> c
end

module Pq = Map.Make (Key)

(* A suspended fiber: the continuation plus the fiber-local time at which it
   parked.  Resuming never rewinds the fiber below [pk_at]. *)
type parked = { pk_at : int64; pk_k : (unit, unit) Effect.Deep.continuation }

type t = {
  clock : Clock.t;
  mutable seq : int;
  mutable events : (unit -> unit) Pq.t;
  mutable next_id : int;
}

(* {1 Two-list deque}

   Every wait list in the scheduler (ivar readers, mutex waiters, condvar
   parkers) and every per-worker run queue is one of these: a functional
   deque with amortized O(1) push/pop at both ends.  The old waiter lists
   were appended with [@ [p]], which made broadcast-heavy runs pay a
   quadratic copy per parked fiber. *)
module Dq = struct
  type 'a t = {
    mutable front : 'a list; (* oldest end, in order *)
    mutable back : 'a list; (* youngest end, reversed *)
    mutable len : int;
  }

  let create () = { front = []; back = []; len = 0 }
  let length d = d.len
  let is_empty d = d.len = 0

  let push_back d x =
    d.back <- x :: d.back;
    d.len <- d.len + 1

  let push_front d x =
    d.front <- x :: d.front;
    d.len <- d.len + 1

  let norm_front d =
    if d.front = [] then begin
      d.front <- List.rev d.back;
      d.back <- []
    end

  let peek_front d =
    if d.len = 0 then None
    else begin
      norm_front d;
      match d.front with x :: _ -> Some x | [] -> None
    end

  let pop_front d =
    if d.len = 0 then None
    else begin
      norm_front d;
      match d.front with
      | x :: rest ->
          d.front <- rest;
          d.len <- d.len - 1;
          Some x
      | [] -> None
    end

  let pop_back d =
    if d.len = 0 then None
    else begin
      if d.back = [] then begin
        d.back <- List.rev d.front;
        d.front <- []
      end;
      match d.back with
      | x :: rest ->
          d.back <- rest;
          d.len <- d.len - 1;
          Some x
      | [] -> None
    end

  (* Oldest-first snapshot; empties the deque. *)
  let drain d =
    let xs = d.front @ List.rev d.back in
    d.front <- [];
    d.back <- [];
    d.len <- 0;
    xs
end

exception Deadlock of string

type _ Effect.t +=
  | Suspend : (parked -> unit) -> unit Effect.t
  | Current : int Effect.t

let create ~clock = { clock; seq = 0; events = Pq.empty; next_id = 0 }
let clock t = t.clock

(* Fiber id of the caller; 0 when running at top level (the "main thread"),
   where no effect handler is installed. *)
let current_id () = try Effect.perform Current with Effect.Unhandled _ -> 0
let in_task () = current_id () > 0

let schedule t ~at fn =
  t.seq <- t.seq + 1;
  t.events <- Pq.add (at, t.seq) fn t.events

(* Make a parked fiber runnable.  It resumes no earlier than both its own
   park time and the waker's current time: a reply cannot be seen before it
   was produced, and a fiber cannot travel back below its own timeline. *)
let resume t p =
  let now = Clock.now_ns t.clock in
  let at = if Int64.compare now p.pk_at > 0 then now else p.pk_at in
  schedule t ~at (fun () -> Effect.Deep.continue p.pk_k ())

let suspend register = Effect.perform (Suspend register)

let run_fiber t (id : int) f =
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    function
    | Suspend register ->
        Some (fun k -> register { pk_at = Clock.now_ns t.clock; pk_k = k })
    | Current -> Some (fun k -> Effect.Deep.continue k id)
    | _ -> None
  in
  Effect.Deep.match_with f ()
    { Effect.Deep.retc = (fun () -> ()); exnc = raise; effc }

let pending_events t = Pq.cardinal t.events

(* Pop-and-run events until [stop] holds.  The clock warps to each event's
   timestamp before the owning fiber's segment runs. *)
let drive_until t stop =
  while not (stop ()) do
    match Pq.min_binding_opt t.events with
    | None -> raise (Deadlock "Sched: waiting with no runnable task")
    | Some (((at, _) as key), fn) ->
        t.events <- Pq.remove key t.events;
        Clock.set_ns t.clock at;
        fn ()
  done

(* {1 Ivars} *)

type 'a ivar = {
  mutable iv_st : ('a, exn) result option;
  mutable iv_at : int64; (* fill time *)
  iv_waiters : parked Dq.t; (* FIFO *)
}

type 'a task = 'a ivar

let ivar () = { iv_st = None; iv_at = 0L; iv_waiters = Dq.create () }
let is_filled iv = iv.iv_st <> None

let fill_result t iv r =
  if iv.iv_st <> None then invalid_arg "Sched.fill: already filled";
  iv.iv_st <- Some r;
  iv.iv_at <- Clock.now_ns t.clock;
  List.iter (resume t) (Dq.drain iv.iv_waiters)

let fill t iv v = fill_result t iv (Ok v)

let read t iv =
  let finish () =
    (* The value cannot be observed before it was produced. *)
    if Int64.compare (Clock.now_ns t.clock) iv.iv_at < 0 then
      Clock.set_ns t.clock iv.iv_at;
    match iv.iv_st with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false
  in
  match iv.iv_st with
  | Some _ -> finish ()
  | None ->
      if in_task () then begin
        suspend (fun p -> Dq.push_back iv.iv_waiters p);
        finish ()
      end
      else begin
        (* Top-level code cannot park; it drives the event loop instead and
           lands at max(its entry time, the fill time). *)
        let entry = Clock.now_ns t.clock in
        drive_until t (fun () -> iv.iv_st <> None);
        if Int64.compare (Clock.now_ns t.clock) entry < 0 then
          Clock.set_ns t.clock entry;
        finish ()
      end

(* {1 Tasks} *)

let spawn t f =
  let iv = ivar () in
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  schedule t ~at:(Clock.now_ns t.clock) (fun () ->
      run_fiber t id (fun () ->
          let r = try Ok (f ()) with e -> Error e in
          fill_result t iv r));
  iv

let await = read
let run t f = await t (spawn t f)

(* Drive until [pred] holds; only for top-level callers (backpressure waits
   that originate outside any task). *)
let drive_main t pred =
  let entry = Clock.now_ns t.clock in
  drive_until t pred;
  if Int64.compare (Clock.now_ns t.clock) entry < 0 then Clock.set_ns t.clock entry

(* {1 Mutex}

   Mesa-style barging lock, reentrant per fiber.  Owner token is the fiber
   id (-1 for main, which spins the event loop instead of parking).  Unlock
   wakes the head waiter but does not hand the lock over — the waiter
   re-attempts, so a lock released and re-taken within one segment never
   deadlocks the wakee.

   The lock also has a *virtual-time* footprint: event order and timeline
   order differ, so a fiber whose whole critical section ran in one event
   segment may release the lock (in event order) while its section still
   covers a later fiber's acquisition time.  Completed sections are kept as
   committed hold intervals; acquisition settles the taker forward to the
   earliest instant not inside any committed hold — critical sections never
   overlap in virtual time, yet a fiber arriving in a gap *before* an
   already-committed hold acquires at its own time instead of being warped
   past releases that, on the virtual timeline, haven't happened yet. *)

type mutex = {
  mutable mu_owner : int; (* 0 = free *)
  mutable mu_depth : int;
  mutable mu_hold_start : int64; (* acquisition time of the current hold *)
  mutable mu_holds : (int64 * int64) list; (* committed holds, newest first *)
  mu_waiters : parked Dq.t;
}

(* Holds retained per mutex; older ones are forgotten (their fibers are far
   ahead, so overlap with an ancient hold cannot arise in practice). *)
let max_holds = 32

let mutex () =
  {
    mu_owner = 0;
    mu_depth = 0;
    mu_hold_start = 0L;
    mu_holds = [];
    mu_waiters = Dq.create ();
  }

let owner_token () = match current_id () with 0 -> -1 | id -> id

let acquired t m me =
  m.mu_owner <- me;
  m.mu_depth <- 1;
  let rec settle s =
    match
      List.find_opt
        (fun (b, e) -> Int64.compare b s <= 0 && Int64.compare s e < 0)
        m.mu_holds
    with
    | Some (_, e) -> settle e
    | None -> s
  in
  let now = Clock.now_ns t.clock in
  let s = settle now in
  if Int64.compare s now > 0 then Clock.set_ns t.clock s;
  m.mu_hold_start <- s

let rec lock t m =
  let me = owner_token () in
  if m.mu_owner = 0 then acquired t m me
  else if m.mu_owner = me then m.mu_depth <- m.mu_depth + 1
  else if me = -1 then begin
    drive_main t (fun () -> m.mu_owner = 0);
    acquired t m me
  end
  else begin
    suspend (fun p -> Dq.push_back m.mu_waiters p);
    lock t m
  end

let unlock t m =
  if m.mu_owner <> owner_token () then invalid_arg "Sched.unlock: not the owner";
  m.mu_depth <- m.mu_depth - 1;
  if m.mu_depth = 0 then begin
    m.mu_owner <- 0;
    m.mu_holds <-
      List.filteri
        (fun i _ -> i < max_holds)
        ((m.mu_hold_start, Clock.now_ns t.clock) :: m.mu_holds);
    match Dq.pop_front m.mu_waiters with
    | None -> ()
    | Some p -> resume t p
  end

let with_lock t m f =
  lock t m;
  Fun.protect ~finally:(fun () -> unlock t m) f

(* {1 Condition variables} *)

type cond = { cv_waiters : parked Dq.t }

let cond () = { cv_waiters = Dq.create () }
let waiters cv = Dq.length cv.cv_waiters

(* Park on [cv] without holding any lock; tasks only switch at effects, so
   an unlock immediately followed by [park] cannot miss a wakeup. *)
let park _t cv =
  if not (in_task ()) then invalid_arg "Sched.park: only tasks can park";
  suspend (fun p -> Dq.push_back cv.cv_waiters p)

(* Unlock + park is atomic here because tasks only switch at effects. *)
let wait t cv m =
  if m.mu_depth <> 1 then invalid_arg "Sched.wait: mutex depth must be 1";
  unlock t m;
  park t cv;
  lock t m

let signal t cv =
  match Dq.pop_front cv.cv_waiters with
  | None -> 0
  | Some p ->
      resume t p;
      1

(* Wake every waiter; returns how many were woken so the caller can charge
   the walk over the wait list. *)
let broadcast t cv =
  let ws = Dq.drain cv.cv_waiters in
  List.iter (resume t) ws;
  List.length ws

(* Reschedule the caller at its own current time, behind every event already
   queued at or before it.  Long-running loops yield at natural preemption
   points so event order tracks virtual-time order — otherwise one fiber can
   commit a long stretch of lock holds before same-time peers get to run. *)
let yield t =
  if in_task () then
    suspend (fun p ->
        schedule t ~at:p.pk_at (fun () -> Effect.Deep.continue p.pk_k ()))

let sleep_ns t ns =
  if in_task () then
    suspend (fun p ->
        schedule t
          ~at:(Int64.add p.pk_at (Int64.of_int ns))
          (fun () -> Effect.Deep.continue p.pk_k ()))
  else Clock.consume_int t.clock ns

(* {1 Work-stealing pool state}

   Per-worker local deques in the Manticore style: owners push/pop at the
   front (LIFO for locally-spawned work via [push_local], FIFO drain of
   submissions via [pop]), thieves take the *oldest* entry from a victim's
   front (FIFO steal), so stolen work is the work that has waited longest.

   This module is pure bookkeeping — it owns no mutexes and charges no
   virtual time.  The client (the FUSE connection) wraps each queue in its
   own shard lock and charges lock/wake/steal-walk costs itself; that keeps
   the accounting policy where the cost model lives.

   Determinism: victim selection draws from a per-worker SplitMix64 stream
   seeded from (pool seed, worker id), XOR-mixed with the caller's virtual
   clock so the walk order depends only on (seed, worker, time) — never on
   physical scheduling.  Parked-worker targeting is a LIFO stack: the most
   recently parked worker is woken first (its state is warmest and its park
   is cheapest to cancel), folded into a cost-scored placement that weighs
   waking a sleeper against queueing behind a soon-free busy worker. *)

module Ws = struct
  type 'a t = {
    ws_seed : int;
    mutable ws_queues : 'a Dq.t array;
    mutable ws_rngs : Rng.t array;
    mutable ws_parked : int list; (* LIFO: head = most recently parked *)
    mutable ws_avail : int64 array;
        (* virtual time each worker's last known work segment ends: a
           submission before it is picked up at [avail] for free (the
           worker is semantically still busy and finds it on its next
           queue check); one at or after it needs a wake *)
    mutable ws_queued : int; (* total items across all queues *)
    mutable ws_steals : int;
    mutable ws_steal_fails : int;
    mutable ws_local_hits : int;
  }

  let worker_rng seed i =
    (* Distinct stream per worker: golden-ratio mix of the worker id. *)
    Rng.create ~seed:(seed lxor ((i + 1) * 0x9E3779B9))

  let create ?(seed = 0x5EED) () =
    {
      ws_seed = seed;
      ws_queues = [||];
      ws_rngs = [||];
      ws_parked = [];
      ws_avail = [||];
      ws_queued = 0;
      ws_steals = 0;
      ws_steal_fails = 0;
      ws_local_hits = 0;
    }

  let size p = Array.length p.ws_queues

  let ensure p n =
    let have = size p in
    if n > have then begin
      let queues = Array.init n (fun _ -> Dq.create ()) in
      Array.blit p.ws_queues 0 queues 0 have;
      let rngs = Array.init n (fun i -> worker_rng p.ws_seed i) in
      Array.blit p.ws_rngs 0 rngs 0 have;
      let avail = Array.make n 0L in
      Array.blit p.ws_avail 0 avail 0 have;
      p.ws_queues <- queues;
      p.ws_rngs <- rngs;
      p.ws_avail <- avail
    end

  let depth p i = Dq.length p.ws_queues.(i)
  let queued p = p.ws_queued
  let steals p = p.ws_steals
  let steal_fails p = p.ws_steal_fails
  let local_hits p = p.ws_local_hits

  let is_parked p i = List.mem i p.ws_parked

  (* Submission placement: minimize the request's expected pickup delay.

     The one signal that matters is each worker's [avail] — the virtual
     time its last known work segment ends (simulation fibers run ahead of
     the virtual timeline, so a worker that has already yielded, slept or
     parked in *event* order may still be mid-item at the submit instant).
     A submission before [avail] is picked up at [avail] for free: the
     worker is semantically still busy and finds the entry on its next
     queue check — this is what lets partitioned deques keep the global
     FIFO's pipelining, where whichever worker freed first absorbed a
     request submitted during its service time for just the residual wait.
     A submission at or after [avail] finds the worker idle (blocked in
     read(2)) and pays a full wake [wake_ns]; every already-queued entry
     adds one service time [item_ns].  Ties prefer the most recently
     parked worker (LIFO — warmest state), then the lowest id.  Pure
     function of pool state: placement stays deterministic.  Returns
     (worker id, was-parked hint). *)
  let submit_target p ~now ~wake_ns ~item_ns =
    let n = size p in
    let score i =
      let q = depth p i * item_ns in
      let avail = p.ws_avail.(i) in
      if Int64.compare avail now > 0 then
        (* still within its work segment or spin-grace window: a parked
           worker here is spinning and picks the entry up instantly; an
           unparked one absorbs it when its segment ends at [avail] *)
        if is_parked p i then q else Int64.to_int (Int64.sub avail now) + q
      else wake_ns + q
    in
    let best = ref 0 and best_score = ref max_int in
    (* most recently parked first, so equal-score parked workers resolve
       LIFO; the id loop below never displaces an equal score *)
    List.iter
      (fun i ->
        if i < n then begin
          let s = score i in
          if s < !best_score then begin
            best := i;
            best_score := s
          end
        end)
      p.ws_parked;
    for i = 0 to n - 1 do
      let s = score i in
      if s < !best_score then begin
        best := i;
        best_score := s
      end
    done;
    let id = !best in
    if is_parked p id then begin
      p.ws_parked <- List.filter (fun j -> j <> id) p.ws_parked;
      (id, true)
    end
    else (id, false)

  let set_avail p i at = p.ws_avail.(i) <- at

  let avail p i = p.ws_avail.(i)

  let set_parked p i ~at =
    p.ws_avail.(i) <- at;
    if not (List.mem i p.ws_parked) then p.ws_parked <- i :: p.ws_parked

  let clear_parked p i =
    p.ws_parked <- List.filter (fun j -> j <> i) p.ws_parked

  (* Submissions enter at the back: the owner drains its queue oldest-first. *)
  let push p i x =
    Dq.push_back p.ws_queues.(i) x;
    p.ws_queued <- p.ws_queued + 1

  (* Locally-spawned work enters at the front (LIFO for the owner);
     thieves still take from the oldest end. *)
  let push_local p i x =
    Dq.push_front p.ws_queues.(i) x;
    p.ws_queued <- p.ws_queued + 1

  let peek p i = Dq.peek_front p.ws_queues.(i)

  let pop p i =
    match Dq.pop_front p.ws_queues.(i) with
    | Some x ->
        p.ws_queued <- p.ws_queued - 1;
        p.ws_local_hits <- p.ws_local_hits + 1;
        Some x
    | None -> None

  (* FIFO steal: the oldest entry of the victim's queue. *)
  let steal_from p ~victim =
    match Dq.pop_front p.ws_queues.(victim) with
    | Some x ->
        p.ws_queued <- p.ws_queued - 1;
        p.ws_steals <- p.ws_steals + 1;
        Some x
    | None -> None

  let steal_failed p = p.ws_steal_fails <- p.ws_steal_fails + 1

  (* Deterministic victim walk for [thief]: a cyclic rotation of the other
     workers, whose starting point mixes the thief's private SplitMix64
     stream with the virtual clock.  Same (seed, thief, now, draw count)
     always yields the same order. *)
  let victim_order p ~thief ~now =
    let n = size p in
    if n <= 1 then []
    else begin
      let others = ref [] in
      for i = n - 1 downto 0 do
        if i <> thief then others := i :: !others
      done;
      let others = Array.of_list !others in
      let m = Array.length others in
      let draw = Int64.logxor (Rng.next_int64 p.ws_rngs.(thief)) now in
      let start =
        Int64.to_int (Int64.rem (Int64.logand draw Int64.max_int) (Int64.of_int m))
      in
      List.init m (fun k -> others.((start + k) mod m))
    end

  (* Oldest-first snapshot of everything queued anywhere (used on crash
     drains); empties all queues. *)
  let drain_all p =
    let xs =
      Array.to_list p.ws_queues |> List.concat_map (fun q -> Dq.drain q)
    in
    p.ws_queued <- 0;
    xs
end
