(* Deterministic discrete-event task scheduler.

   The simulation multiplexes cooperative tasks (effect-handler fibers) onto
   the single virtual clock.  Each task carries its own timeline: when a task
   runs, the clock holds *that task's* current time, and advancing the clock
   with [Clock.consume] charges work to the running task only.  Tasks
   interleave exclusively at explicit wait points (ivar reads, mutex/condvar
   waits, sleeps), so two tasks whose wait-free segments overlap in virtual
   time genuinely overlap: total elapsed time is the max of their timelines,
   not the sum.

   Events are keyed by (time, sequence-number); the sequence number breaks
   ties in submission order, making every run deterministic regardless of
   how task timelines interleave. *)

open Repro_util

module Key = struct
  type t = int64 * int

  let compare (a1, s1) (a2, s2) =
    match Int64.compare a1 a2 with 0 -> compare (s1 : int) s2 | c -> c
end

module Pq = Map.Make (Key)

(* A suspended fiber: the continuation plus the fiber-local time at which it
   parked.  Resuming never rewinds the fiber below [pk_at]. *)
type parked = { pk_at : int64; pk_k : (unit, unit) Effect.Deep.continuation }

type t = {
  clock : Clock.t;
  mutable seq : int;
  mutable events : (unit -> unit) Pq.t;
  mutable next_id : int;
}

exception Deadlock of string

type _ Effect.t +=
  | Suspend : (parked -> unit) -> unit Effect.t
  | Current : int Effect.t

let create ~clock = { clock; seq = 0; events = Pq.empty; next_id = 0 }
let clock t = t.clock

(* Fiber id of the caller; 0 when running at top level (the "main thread"),
   where no effect handler is installed. *)
let current_id () = try Effect.perform Current with Effect.Unhandled _ -> 0
let in_task () = current_id () > 0

let schedule t ~at fn =
  t.seq <- t.seq + 1;
  t.events <- Pq.add (at, t.seq) fn t.events

(* Make a parked fiber runnable.  It resumes no earlier than both its own
   park time and the waker's current time: a reply cannot be seen before it
   was produced, and a fiber cannot travel back below its own timeline. *)
let resume t p =
  let now = Clock.now_ns t.clock in
  let at = if Int64.compare now p.pk_at > 0 then now else p.pk_at in
  schedule t ~at (fun () -> Effect.Deep.continue p.pk_k ())

let suspend register = Effect.perform (Suspend register)

let run_fiber t (id : int) f =
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    function
    | Suspend register ->
        Some (fun k -> register { pk_at = Clock.now_ns t.clock; pk_k = k })
    | Current -> Some (fun k -> Effect.Deep.continue k id)
    | _ -> None
  in
  Effect.Deep.match_with f ()
    { Effect.Deep.retc = (fun () -> ()); exnc = raise; effc }

let pending_events t = Pq.cardinal t.events

(* Pop-and-run events until [stop] holds.  The clock warps to each event's
   timestamp before the owning fiber's segment runs. *)
let drive_until t stop =
  while not (stop ()) do
    match Pq.min_binding_opt t.events with
    | None -> raise (Deadlock "Sched: waiting with no runnable task")
    | Some (((at, _) as key), fn) ->
        t.events <- Pq.remove key t.events;
        Clock.set_ns t.clock at;
        fn ()
  done

(* {1 Ivars} *)

type 'a ivar = {
  mutable iv_st : ('a, exn) result option;
  mutable iv_at : int64; (* fill time *)
  mutable iv_waiters : parked list; (* FIFO *)
}

type 'a task = 'a ivar

let ivar () = { iv_st = None; iv_at = 0L; iv_waiters = [] }
let is_filled iv = iv.iv_st <> None

let fill_result t iv r =
  if iv.iv_st <> None then invalid_arg "Sched.fill: already filled";
  iv.iv_st <- Some r;
  iv.iv_at <- Clock.now_ns t.clock;
  let ws = iv.iv_waiters in
  iv.iv_waiters <- [];
  List.iter (resume t) ws

let fill t iv v = fill_result t iv (Ok v)

let read t iv =
  let finish () =
    (* The value cannot be observed before it was produced. *)
    if Int64.compare (Clock.now_ns t.clock) iv.iv_at < 0 then
      Clock.set_ns t.clock iv.iv_at;
    match iv.iv_st with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false
  in
  match iv.iv_st with
  | Some _ -> finish ()
  | None ->
      if in_task () then begin
        suspend (fun p -> iv.iv_waiters <- iv.iv_waiters @ [ p ]);
        finish ()
      end
      else begin
        (* Top-level code cannot park; it drives the event loop instead and
           lands at max(its entry time, the fill time). *)
        let entry = Clock.now_ns t.clock in
        drive_until t (fun () -> iv.iv_st <> None);
        if Int64.compare (Clock.now_ns t.clock) entry < 0 then
          Clock.set_ns t.clock entry;
        finish ()
      end

(* {1 Tasks} *)

let spawn t f =
  let iv = ivar () in
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  schedule t ~at:(Clock.now_ns t.clock) (fun () ->
      run_fiber t id (fun () ->
          let r = try Ok (f ()) with e -> Error e in
          fill_result t iv r));
  iv

let await = read
let run t f = await t (spawn t f)

(* Drive until [pred] holds; only for top-level callers (backpressure waits
   that originate outside any task). *)
let drive_main t pred =
  let entry = Clock.now_ns t.clock in
  drive_until t pred;
  if Int64.compare (Clock.now_ns t.clock) entry < 0 then Clock.set_ns t.clock entry

(* {1 Mutex}

   Mesa-style barging lock, reentrant per fiber.  Owner token is the fiber
   id (-1 for main, which spins the event loop instead of parking).  Unlock
   wakes the head waiter but does not hand the lock over — the waiter
   re-attempts, so a lock released and re-taken within one segment never
   deadlocks the wakee.

   The lock also has a *virtual-time* footprint: event order and timeline
   order differ, so a fiber whose whole critical section ran in one event
   segment may release the lock (in event order) while its section still
   covers a later fiber's acquisition time.  Completed sections are kept as
   committed hold intervals; acquisition settles the taker forward to the
   earliest instant not inside any committed hold — critical sections never
   overlap in virtual time, yet a fiber arriving in a gap *before* an
   already-committed hold acquires at its own time instead of being warped
   past releases that, on the virtual timeline, haven't happened yet. *)

type mutex = {
  mutable mu_owner : int; (* 0 = free *)
  mutable mu_depth : int;
  mutable mu_hold_start : int64; (* acquisition time of the current hold *)
  mutable mu_holds : (int64 * int64) list; (* committed holds, newest first *)
  mutable mu_waiters : parked list;
}

(* Holds retained per mutex; older ones are forgotten (their fibers are far
   ahead, so overlap with an ancient hold cannot arise in practice). *)
let max_holds = 32

let mutex () =
  { mu_owner = 0; mu_depth = 0; mu_hold_start = 0L; mu_holds = []; mu_waiters = [] }

let owner_token () = match current_id () with 0 -> -1 | id -> id

let acquired t m me =
  m.mu_owner <- me;
  m.mu_depth <- 1;
  let rec settle s =
    match
      List.find_opt
        (fun (b, e) -> Int64.compare b s <= 0 && Int64.compare s e < 0)
        m.mu_holds
    with
    | Some (_, e) -> settle e
    | None -> s
  in
  let now = Clock.now_ns t.clock in
  let s = settle now in
  if Int64.compare s now > 0 then Clock.set_ns t.clock s;
  m.mu_hold_start <- s

let rec lock t m =
  let me = owner_token () in
  if m.mu_owner = 0 then acquired t m me
  else if m.mu_owner = me then m.mu_depth <- m.mu_depth + 1
  else if me = -1 then begin
    drive_main t (fun () -> m.mu_owner = 0);
    acquired t m me
  end
  else begin
    suspend (fun p -> m.mu_waiters <- m.mu_waiters @ [ p ]);
    lock t m
  end

let unlock t m =
  if m.mu_owner <> owner_token () then invalid_arg "Sched.unlock: not the owner";
  m.mu_depth <- m.mu_depth - 1;
  if m.mu_depth = 0 then begin
    m.mu_owner <- 0;
    m.mu_holds <-
      List.filteri
        (fun i _ -> i < max_holds)
        ((m.mu_hold_start, Clock.now_ns t.clock) :: m.mu_holds);
    match m.mu_waiters with
    | [] -> ()
    | p :: rest ->
        m.mu_waiters <- rest;
        resume t p
  end

let with_lock t m f =
  lock t m;
  Fun.protect ~finally:(fun () -> unlock t m) f

(* {1 Condition variables} *)

type cond = { mutable cv_waiters : parked list }

let cond () = { cv_waiters = [] }
let waiters cv = List.length cv.cv_waiters

(* Park on [cv] without holding any lock; tasks only switch at effects, so
   an unlock immediately followed by [park] cannot miss a wakeup. *)
let park _t cv =
  if not (in_task ()) then invalid_arg "Sched.park: only tasks can park";
  suspend (fun p -> cv.cv_waiters <- cv.cv_waiters @ [ p ])

(* Unlock + park is atomic here because tasks only switch at effects. *)
let wait t cv m =
  if m.mu_depth <> 1 then invalid_arg "Sched.wait: mutex depth must be 1";
  unlock t m;
  park t cv;
  lock t m

let signal t cv =
  match cv.cv_waiters with
  | [] -> 0
  | p :: rest ->
      cv.cv_waiters <- rest;
      resume t p;
      1

(* Wake every waiter; returns how many were woken so the caller can charge
   the walk over the wait list. *)
let broadcast t cv =
  let ws = cv.cv_waiters in
  cv.cv_waiters <- [];
  List.iter (resume t) ws;
  List.length ws

(* Reschedule the caller at its own current time, behind every event already
   queued at or before it.  Long-running loops yield at natural preemption
   points so event order tracks virtual-time order — otherwise one fiber can
   commit a long stretch of lock holds before same-time peers get to run. *)
let yield t =
  if in_task () then
    suspend (fun p ->
        schedule t ~at:p.pk_at (fun () -> Effect.Deep.continue p.pk_k ()))

let sleep_ns t ns =
  if in_task () then
    suspend (fun p ->
        schedule t
          ~at:(Int64.add p.pk_at (Int64.of_int ns))
          (fun () -> Effect.Deep.continue p.pk_k ()))
  else Clock.consume_int t.clock ns
