(* The evaluation harness: regenerates every table and figure of the
   paper's §5 (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e2 e4      # selected experiments
     dune exec bench/main.exe micro      # bechamel wall-clock micro-benches

   E1  §5.1   xfstests: 94 generic tests, native vs CntrFS
   E2  Fig 2  Phoronix suite relative overheads (20 benchmarks)
   E3  Fig 3  optimization ablations (4 panels)
   E4  Fig 4  CntrFS server threads sweep
   E5  Fig 5  Docker-Slim on the Top-50 images
   E6  §1     deployment time: fat vs slim image pulls
   E7  §4     implementation inventory *)

open Repro_util

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

(* --- E1: xfstests ----------------------------------------------------------- *)

let e1 () =
  section "E1 (§5.1) xfstests generic suite — completeness & correctness";
  let open Repro_xfstests in
  let native = Harness.run_suite (Harness.setup_native ()) Suite.all in
  let cntrfs = Harness.run_suite (Harness.setup_cntrfs ()) Suite.all in
  Printf.printf "suite: %d tests (groups: auto, quick, aio, prealloc, ioctl, dangerous)\n"
    Suite.count;
  Printf.printf "native tmpfs   : %d/%d passed\n" native.Harness.s_passed native.Harness.s_total;
  Printf.printf "CntrFS on tmpfs: %d/%d passed (paper: 90/94, 95.74%%)\n"
    cntrfs.Harness.s_passed cntrfs.Harness.s_total;
  List.iter
    (fun (id, msg) ->
      let reason =
        match id with
        | 228 -> "RLIMIT_FSIZE not enforced by the server (paper §5.1 #2)"
        | 375 -> "SETGID not cleared: ACLs delegated via setfsuid (paper §5.1 #1)"
        | 391 -> "no direct I/O: mmap and O_DIRECT are exclusive (paper §5.1 #3)"
        | 426 -> "inodes not exportable via name_to_handle_at (paper §5.1 #4)"
        | _ -> "UNEXPECTED"
      in
      Printf.printf "  generic/%03d FAILED — %s\n    (%s)\n" id msg reason)
    cntrfs.Harness.s_failed;
  Printf.printf "%!"

(* --- E2: Figure 2 ------------------------------------------------------------ *)

(* `--json`: experiments that have a JSON form additionally write a
   BENCH_<exp>.json file into the current directory (the repo root, when
   run via `dune exec` from there).  Everything in those files derives from
   the virtual clock and the fixed workload seeds, so two runs produce
   byte-identical bytes. *)
let json_mode = ref false

let write_json_file path content =
  let oc = open_out path in
  output_string oc content;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let e2 () =
  section "E2 (Figure 2) Phoronix suite: relative overhead of CntrFS (lower is better)";
  Printf.printf "%-22s %8s %10s   %s\n" "benchmark" "paper" "measured" "";
  let bars v =
    let n = int_of_float (v *. 4.) in
    String.make (min 60 (max 1 n)) '#'
  in
  let within = ref 0 in
  let rows =
    List.map
      (fun w ->
        let o = Repro_workloads.Bench_env.overhead w in
        if o <= 1.5 then incr within;
        Printf.printf "%-22s %7.1fx %9.2fx   %s\n%!" w.Repro_workloads.Bench_env.w_name
          w.Repro_workloads.Bench_env.w_paper o (bars o);
        (w.Repro_workloads.Bench_env.w_name, w.Repro_workloads.Bench_env.w_paper, o))
      Repro_workloads.Suite.figure2
  in
  Printf.printf "\n%d out of 20 benchmarks at or below 1.5x (paper: 13/20 below 1.5x)\n%!" !within;
  if !json_mode then begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"experiment\": \"e2\",\n  \"metric\": \"relative overhead (cntrfs/native)\",\n  \"workloads\": [\n";
    List.iteri
      (fun i (name, paper, measured) ->
        Buffer.add_string buf
          (Printf.sprintf "    {\"name\": \"%s\", \"paper\": %.1f, \"measured\": %.4f}%s\n"
             (Repro_obs.Metrics.json_escape name) paper measured
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}";
    write_json_file "BENCH_e2.json" (Buffer.contents buf)
  end

(* E2 smoke mode: one workload per family through the CntrFS backend, all
   feeding one shared registry, dumped as BENCH_smoke.json.  Runs under
   `dune runtest` as a fast end-to-end check that the observability layer
   sees real traffic from every subsystem. *)

let e2_smoke () =
  section "E2 (smoke) one workload per family -> BENCH_smoke.json";
  let wanted =
    [ "IOzone: Read"; "IOzone: Write"; "PostMark"; "Compileb.: Read"; "Gzip" ]
  in
  let smoke =
    List.filter
      (fun w -> List.mem w.Repro_workloads.Bench_env.w_name wanted)
      Repro_workloads.Suite.figure2
  in
  let obs = Repro_obs.Obs.create () in
  List.iter
    (fun w ->
      let ns =
        Repro_workloads.Bench_env.run_workload ~obs
          ~backend:(Repro_workloads.Bench_env.Cntrfs Repro_fuse.Opts.cntr_default) w
      in
      Printf.printf "  %-22s %12d virtual ns\n%!" w.Repro_workloads.Bench_env.w_name ns)
    smoke;
  let json = Repro_obs.Obs.to_json obs in
  let oc = open_out "BENCH_smoke.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let metrics = Repro_obs.Obs.metrics obs in
  let c name = Repro_obs.Metrics.counter_value metrics name in
  Printf.printf
    "wrote BENCH_smoke.json: %d workloads, %d fuse requests, %d syscalls, %d lookups\n%!"
    (List.length smoke) (c "fuse.req.count") (c "os.syscall.count")
    (c "cntrfs.lookup.count");
  if c "fuse.req.count" = 0 || c "os.syscall.count" = 0 then begin
    Printf.eprintf "smoke: registry saw no traffic\n";
    exit 1
  end

(* --- E2a: zero-copy data-path ablation --------------------------------------- *)

(* Streaming-heavy rows of Figure 2 re-run under three data-path configs
   sharing one cost model (lib/os Datapath): copy (both splice knobs off —
   every payload pays the memcpy), splice (the default: bulk READ replies
   move by page remapping, priced setup + per-page), and splice+passthrough
   (granted opens bypass the FUSE round trip onto the backing file).

   Self-gating: the ladder must hold on every streaming row — passthrough
   must strictly cut overhead vs. the copy baseline, and must never
   regress the splice-only leg.  A violated rung exits 1. *)
let e2a () =
  section "E2a (ablation) data path: copy vs splice vs splice+passthrough";
  let open Repro_fuse in
  let streaming =
    [ "IOzone: Read"; "IOzone: Write"; "Gzip"; "Threaded I/O: Read"; "FIO" ]
  in
  let rows =
    List.filter
      (fun w -> List.mem w.Repro_workloads.Bench_env.w_name streaming)
      Repro_workloads.Suite.figure2
  in
  let copy_opts =
    { Opts.cntr_default with Opts.splice_read = false; splice_write = false; passthrough = 0 }
  in
  let splice_opts = Opts.cntr_default in
  let pt_opts = { Opts.cntr_default with Opts.passthrough = 64 } in
  Printf.printf "%-22s %10s %10s %12s\n" "workload" "copy" "splice" "splice+pt";
  let measured =
    List.map
      (fun w ->
        let m opts = Repro_workloads.Bench_env.overhead ~opts w in
        let c = m copy_opts in
        let s = m splice_opts in
        let p = m pt_opts in
        Printf.printf "%-22s %9.2fx %9.2fx %11.2fx\n%!"
          w.Repro_workloads.Bench_env.w_name c s p;
        (w.Repro_workloads.Bench_env.w_name, c, s, p))
      rows
  in
  (* IOzone: Write is the writeback-mode control: its writes batch in the
     page cache and flush in the background, the grant never bites, and
     the three legs must price identically.  Every read-streaming row must
     strictly improve down the ladder. *)
  let fail = ref false in
  List.iter
    (fun (name, c, s, p) ->
      let strict = not (String.equal name "IOzone: Write") in
      if (strict && p >= c) || p > c +. 1e-9 then begin
        Printf.eprintf "e2a: %s: passthrough (%.4fx) did not beat the copy baseline (%.4fx)\n"
          name p c;
        fail := true
      end;
      if p > s +. 1e-9 then begin
        Printf.eprintf "e2a: %s: passthrough (%.4fx) regressed the splice leg (%.4fx)\n"
          name p s;
        fail := true
      end)
    measured;
  if !fail then exit 1;
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "{\n  \"experiment\": \"e2a\",\n  \"metric\": \"relative overhead (cntrfs/native) per data-path config\",\n  \"workloads\": [\n";
    List.iteri
      (fun i (name, c, s, p) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": \"%s\", \"copy\": %.4f, \"splice\": %.4f, \"splice_passthrough\": %.4f}%s\n"
             (Repro_obs.Metrics.json_escape name) c s p
             (if i = List.length measured - 1 then "" else ",")))
      measured;
    Buffer.add_string buf "  ]\n}";
    write_json_file "BENCH_e2a.json" (Buffer.contents buf)
  end

(* --- E3: Figure 3 ------------------------------------------------------------ *)

let e3 () =
  section "E3 (Figure 3) Effectiveness of the optimizations";
  List.iter
    (fun a ->
      let open Repro_workloads.Experiments in
      Printf.printf "%s\n  %-28s before: %8.1f   after: %8.1f   native: %8.1f\n  improvement: %.2fx   (%s)\n\n%!"
        a.a_name a.a_metric a.a_before a.a_after a.a_native
        (a.a_after /. a.a_before) a.a_paper_note)
    (Repro_workloads.Experiments.figure3 ())

(* --- E4: Figure 4 ------------------------------------------------------------ *)

let e4 () =
  section "E4 (Figure 4) Sequential read vs number of CntrFS threads";
  let open Repro_workloads.Experiments in
  let points = figure4 () in
  let base = (List.hd points).tp_mbps in
  List.iter
    (fun p ->
      Printf.printf "  %3d threads  %8.1f MB/s  (%.1f%% of single-thread)  %s\n"
        p.tp_threads p.tp_mbps
        (100. *. p.tp_mbps /. base)
        (String.make (int_of_float (p.tp_mbps /. base *. 40.)) '#'))
    points;
  (* the paper's headline number is the 16-thread point; the 64/256 legs
     extend the axis to show the flat tail *)
  let at n = List.find (fun p -> p.tp_threads = n) points in
  let drop = 100. *. (1. -. (at 16).tp_mbps /. base) in
  Printf.printf "\ndrop at 16 threads: %.1f%% (paper: up to 8%%; target after sharding: <= 3%%)\n%!"
    drop;
  let contended = figure4_contended () in
  Printf.printf "\ncontended sweep (8 readers, disjoint files):\n";
  List.iter
    (fun c ->
      Printf.printf
        "  %3d threads  %8.1f MB/s   steals: %4d   steal_fails: %4d   local_hits: %5d\n"
        c.cp_threads c.cp_mbps c.cp_steals c.cp_steal_fails c.cp_local_hits)
    contended;
  (* Self-gates: the scheduler claims behind this PR, enforced on every
     bench run so a regression fails CI rather than drifting the baseline. *)
  let fail = ref false in
  let check cond msg = if not cond then begin
      Printf.eprintf "e4 gate FAILED: %s\n" msg; fail := true end
  in
  check (drop >= 0. && drop <= 3.)
    (Printf.sprintf "drop at 16 threads %.2f%% outside [0%%, 3%%]" drop);
  ignore
    (List.fold_left
       (fun prev p ->
         check (p.tp_mbps <= prev +. 0.0001)
           (Printf.sprintf "throughput rose with more threads at %d (non-monotone tail)"
              p.tp_threads);
         p.tp_mbps)
       base points);
  check ((at 256).tp_mbps /. base >= 0.95)
    (Printf.sprintf "256-thread leg collapsed: %.3f of single-thread"
       ((at 256).tp_mbps /. base));
  let total_steals = List.fold_left (fun a c -> a + c.cp_steals) 0 contended in
  check (total_steals > 0) "contended sweep recorded no steals";
  if !fail then exit 1;
  if !json_mode then begin
    (* Everything below derives from the virtual clock and the fixed
       workload, so two runs write byte-identical files (the determinism
       test in test/test_workloads.ml relies on it). *)
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      "{\n  \"experiment\": \"e4\",\n  \"metric\": \"sequential read throughput \
       [MB/s] vs CntrFS server threads\",\n  \"points\": [\n";
    List.iteri
      (fun i p ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"threads\": %d, \"mbps\": %.4f, \"relative\": %.6f}%s\n"
             p.tp_threads p.tp_mbps (p.tp_mbps /. base)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ],\n  \"contended\": [\n";
    List.iteri
      (fun i c ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"threads\": %d, \"mbps\": %.4f, \"steals\": %d, \
              \"steal_fails\": %d, \"local_hits\": %d}%s\n"
             c.cp_threads c.cp_mbps c.cp_steals c.cp_steal_fails c.cp_local_hits
             (if i = List.length contended - 1 then "" else ",")))
      contended;
    Buffer.add_string buf
      (Printf.sprintf "  ],\n  \"drop_at_16_threads_pct\": %.4f\n}" drop);
    write_json_file "BENCH_e4.json" (Buffer.contents buf)
  end

(* --- E5: Figure 5 ------------------------------------------------------------ *)

let e5 () =
  section "E5 (Figure 5, §5.3) Docker-Slim reduction of the Top-50 Docker Hub images";
  let open Repro_runtime in
  let open Repro_slim in
  let world = Repro_cntr.Testbed.create () in
  let images = Repro_image.Catalog.top50 () in
  let reports =
    List.filter_map
      (fun image ->
        match Slimmer.analyze ~world image with
        | Ok r -> Some r
        | Error e ->
            Printf.printf "  (analysis of %s failed: %s)\n" (Repro_image.Image.ref_ image)
              (Errno.to_string e);
            None)
      images
  in
  ignore (World.docker world);
  let reductions = List.map (fun r -> r.Slimmer.r_reduction *. 100.) reports in
  let mean = Stats.mean reductions in
  Printf.printf "images analyzed: %d\n" (List.length reports);
  Printf.printf "mean size reduction: %.1f%% (paper: 66.6%%)\n" mean;
  let below10 = List.length (List.filter (fun r -> r < 10.) reductions) in
  Printf.printf "images below 10%% reduction: %d (paper: 6 — single Go binaries)\n" below10;
  let in_band = List.length (List.filter (fun r -> r >= 60. && r <= 97.) reductions) in
  Printf.printf "images in [60%%, 97%%]: %d/50 (paper: over 75%%)\n\n" in_band;
  Printf.printf "histogram (reduction %% -> #containers):\n";
  let counts = Stats.histogram ~lo:0. ~hi:100. ~buckets:10 reductions in
  Fmt.pr "%a%!" (Stats.pp_histogram ~lo:0. ~hi:100.) counts;
  (* a few named rows for the record *)
  Printf.printf "\nsample rows:\n";
  List.iteri
    (fun i r ->
      if i < 6 || r.Slimmer.r_reduction < 0.10 then
        Printf.printf "  %-24s %9s -> %9s  (-%.1f%%)\n" r.Slimmer.r_image
          (Size.to_string r.Slimmer.r_original_bytes)
          (Size.to_string r.Slimmer.r_slim_bytes)
          (100. *. r.Slimmer.r_reduction))
    reports;
  Printf.printf "%!"

(* --- E5R: registry-scale dedup + parallel slimming ----------------------------- *)

(* E5 re-tabulated at registry scale: 5000 synthesized images across ~20
   program families, pushed into the content-addressed chunk store, then
   statically partitioned in parallel on the work-stealing fiber pool.
   Self-gates (exit 1) at exactly N=5000: chunk-level dedup ratio must
   beat 1.5x, the sweep must actually steal, the reduction distribution
   must be non-degenerate, and the static-partition slim image of every
   family must still run its entrypoint to exit 0. *)

let e5r_n = 5000

let e5r () =
  section
    (Printf.sprintf "E5R (§5.3 at scale) chunk-dedup store + parallel static slimming of %d images"
       e5r_n);
  let fail msg =
    Printf.eprintf "E5R GATE FAILED: %s\n%!" msg;
    exit 1
  in
  let open Repro_image in
  let open Repro_slim in
  let open Repro_store in
  (* 1. the population: ~20 program families sharing bases and runtimes *)
  let images = Family.synthesize ~n:e5r_n in
  let n = List.length images in
  Printf.printf "families: %d, images synthesized: %d\n%!" (List.length Family.specs) n;
  if n <> e5r_n then fail (Printf.sprintf "synthesize returned %d images, want %d" n e5r_n);
  (* 2. push everything into a content-addressed registry *)
  let clock = Clock.create () in
  let metrics = Repro_obs.Metrics.create () in
  let reg = Registry.create ~metrics ~clock () in
  List.iter (fun image -> Registry.push reg image) images;
  let store = Registry.store reg in
  let dedup = Store.dedup_ratio store in
  Printf.printf "\nstore after full push:\n";
  Printf.printf "  chunks: %d total, %d unique\n" (Store.total_chunks store)
    (Store.unique_chunks store);
  Printf.printf "  bytes:  %s logical, %s physical\n"
    (Size.to_string (Store.logical_bytes store))
    (Size.to_string (Store.physical_bytes store));
  Printf.printf "  chunk-level dedup ratio: %.2fx (gate: > 1.5x)\n%!" dedup;
  if dedup <= 1.5 then fail (Printf.sprintf "dedup ratio %.3f <= 1.5" dedup);
  (* 3. parallel static partitioning on the work-stealing fiber pool *)
  let sweep_clock = Clock.create () in
  let cost_ns image =
    150_000 + (Image.file_count image * 2_000) + (Image.effective_size image / 256)
  in
  let stats, reports =
    Sweep.run ~workers:8 ~metrics ~clock:sweep_clock ~images ~cost_ns
      ~f:(fun image -> fst (Partition.slim image))
      ()
  in
  Printf.printf "\nparallel sweep (%d workers, virtual time):\n" stats.Sweep.sw_workers;
  Printf.printf "  elapsed: %.1f ms, throughput: %.1f images/s\n"
    (Int64.to_float stats.Sweep.sw_elapsed_ns /. 1e6)
    stats.Sweep.sw_images_per_s;
  Printf.printf "  steals: %d (fails %d), local hits: %d\n%!" stats.Sweep.sw_steals
    stats.Sweep.sw_steal_fails stats.Sweep.sw_local_hits;
  if stats.Sweep.sw_steals <= 0 then fail "work-stealing sweep recorded no steals";
  if stats.Sweep.sw_images_per_s <= 0.0 then fail "non-positive slimming throughput";
  if Repro_obs.Metrics.counter_value metrics "sched.steals" <> stats.Sweep.sw_steals then
    fail "sched.steals metric does not mirror the pool counter";
  (* 4. the reduction distribution *)
  let reductions = List.map (fun r -> r.Partition.p_reduction *. 100.) reports in
  let mean = Stats.mean reductions in
  let counts = Stats.histogram ~lo:0. ~hi:100. ~buckets:10 reductions in
  Printf.printf "\nstatic-partition reduction distribution (N=%d):\n" n;
  Array.iteri
    (fun i c ->
      let bar = if c = 0 then 0 else max 1 (min 60 (c * 240 / n)) in
      Printf.printf "  [%5.1f-%5.1f) %5d %s\n" (float_of_int i *. 10.)
        (float_of_int (i + 1) *. 10.)
        c (String.make bar '#'))
    counts;
  Printf.printf "mean static reduction: %.1f%%\n%!" mean;
  let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts in
  if nonzero < 3 then
    fail (Printf.sprintf "degenerate reduction distribution (%d nonzero buckets)" nonzero);
  (* 5. dynamic (fanotify) vs static (dependency graph) on one
        representative per family, with the static slim validated *)
  let world = Repro_cntr.Testbed.create () in
  Printf.printf "\ndynamic vs static, one representative per family:\n";
  Printf.printf "  %-10s %10s %10s %7s\n" "family" "dynamic" "static" "valid";
  let family_rows =
    List.map
      (fun (spec, image) ->
        let static_report, static_image = Partition.slim image in
        let valid =
          match Slimmer.validate ~world static_image with Ok b -> b | Error _ -> false
        in
        let dynamic =
          match Slimmer.analyze ~world image with
          | Ok r -> r.Slimmer.r_reduction
          | Error e ->
              fail
                (Printf.sprintf "dynamic analysis of %s failed: %s" (Image.ref_ image)
                   (Errno.to_string e))
        in
        Printf.printf "  %-10s %9.1f%% %9.1f%% %7s\n" spec.Family.f_name (100. *. dynamic)
          (100. *. static_report.Partition.p_reduction)
          (if valid then "yes" else "NO");
        if not valid then
          fail (Printf.sprintf "static slim of family %s failed validation" spec.Family.f_name);
        (spec.Family.f_name, dynamic, static_report.Partition.p_reduction, valid))
      (Family.representatives ~n:e5r_n)
  in
  Printf.printf "%!";
  if !json_mode then begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      (Printf.sprintf "{\n  \"experiment\": \"e5r\",\n  \"n\": %d,\n" n);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"store\": {\"chunks_total\": %d, \"chunks_unique\": %d, \"bytes_logical\": %d, \"bytes_physical\": %d, \"dedup_ratio\": %.4f},\n"
         (Store.total_chunks store) (Store.unique_chunks store) (Store.logical_bytes store)
         (Store.physical_bytes store) dedup);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"sweep\": {\"workers\": %d, \"images\": %d, \"elapsed_ns\": %Ld, \"images_per_s\": %.2f, \"steals\": %d, \"steal_fails\": %d, \"local_hits\": %d},\n"
         stats.Sweep.sw_workers stats.Sweep.sw_images stats.Sweep.sw_elapsed_ns
         stats.Sweep.sw_images_per_s stats.Sweep.sw_steals stats.Sweep.sw_steal_fails
         stats.Sweep.sw_local_hits);
    Buffer.add_string buf
      (Printf.sprintf "  \"static\": {\"mean_reduction\": %.2f, \"histogram\": [%s]},\n" mean
         (String.concat ", " (Array.to_list (Array.map string_of_int counts))));
    Buffer.add_string buf "  \"families\": [\n";
    List.iteri
      (fun i (name, dynamic, static, valid) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"family\": \"%s\", \"dynamic_reduction\": %.4f, \"static_reduction\": %.4f, \"static_valid\": %b}%s\n"
             name dynamic static valid
             (if i = List.length family_rows - 1 then "" else ",")))
      family_rows;
    Buffer.add_string buf "  ]\n}";
    write_json_file "BENCH_e5r.json" (Buffer.contents buf)
  end

(* --- E6: deployment time ------------------------------------------------------ *)

let e6 () =
  section "E6 (§1 extension) Deployment time: fat vs slim image pull";
  let open Repro_runtime in
  let open Repro_image in
  let open Repro_slim in
  let world = Repro_cntr.Testbed.create () in
  let reg = world.World.registry in
  let sample = [ "nginx:latest"; "mysql:latest"; "elasticsearch:latest" ] in
  Printf.printf "%-22s %10s %10s %10s %10s\n" "image" "fat size" "fat pull" "slim size" "slim pull";
  List.iter
    (fun ref_ ->
      match Registry.find reg ref_ with
      | None -> ()
      | Some image -> (
          match Slimmer.slim ~world image with
          | Error _ -> ()
          | Ok (_report, slim_image) ->
              Registry.push reg slim_image;
              Registry.drop_cache reg;
              let t0 = Clock.now_ns world.World.clock in
              ignore (Result.get_ok (Registry.pull reg ref_));
              let fat_ns = Int64.sub (Clock.now_ns world.World.clock) t0 in
              Registry.drop_cache reg;
              let t1 = Clock.now_ns world.World.clock in
              ignore (Result.get_ok (Registry.pull reg (Image.ref_ slim_image)));
              let slim_ns = Int64.sub (Clock.now_ns world.World.clock) t1 in
              Printf.printf "%-22s %10s %9.1fms %10s %9.1fms\n" ref_
                (Size.to_string (Image.size image))
                (Int64.to_float fat_ns /. 1e6)
                (Size.to_string (Image.size slim_image))
                (Int64.to_float slim_ns /. 1e6)))
    sample;
  Printf.printf
    "\nwith CNTR, the slim image is what gets deployed; the fat tools image\nis attached on demand and shared across applications (paper §1, §2.4)\n%!"

(* --- E7: implementation inventory ---------------------------------------------- *)

let e7 () =
  section "E7 (§4) Implementation inventory (paper: 3651 LoC of Rust total)";
  let count_dir dir =
    try
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.fold_left
           (fun acc f ->
             let ic = open_in (Filename.concat dir f) in
             let rec lines n = match input_line ic with _ -> lines (n + 1) | exception End_of_file -> n in
             let n = lines 0 in
             close_in ic;
             acc + n)
           0
    with Sys_error _ -> 0
  in
  let components =
    [
      ("container engines (paper: 1549 LoC)", "lib/runtime");
      ("CntrFS server (paper: 1481 LoC)", "lib/cntrfs");
      ("FUSE protocol/driver", "lib/fuse");
      ("attach + pseudo TTY (221) + socket proxy (400)", "lib/core");
      ("VFS substrate", "lib/vfs");
      ("OS substrate (kernel/namespaces)", "lib/os");
      ("images & registry", "lib/image");
      ("Docker-Slim", "lib/slim");
      ("workloads & experiments", "lib/workloads");
      ("xfstests harness", "lib/xfstests");
    ]
  in
  List.iter
    (fun (name, dir) ->
      let n = count_dir dir in
      if n > 0 then Printf.printf "  %-52s %5d LoC\n" name n
      else Printf.printf "  %-52s (run from the repository root to count)\n" name)
    components;
  Printf.printf "%!"

(* --- ablation matrix ------------------------------------------------------------- *)

let ablate () =
  section "Ablation matrix: per-optimization overhead on compilebench-read (lower is better)";
  List.iter
    (fun row ->
      let open Repro_workloads.Experiments in
      Printf.printf "  %-44s %6.2fx  %s\n%!" row.mr_config row.mr_overhead
        (String.make (min 60 (int_of_float (row.mr_overhead *. 2.))) '#'))
    (Repro_workloads.Experiments.ablation_matrix ())

let cache_sweep () =
  section "IOzone working-set vs page cache (§5.2.2: double buffering)";
  List.iter
    (fun pt ->
      let open Repro_workloads.Experiments in
      Printf.printf "  %-44s %6.2fx overhead\n%!" pt.cp_label pt.cp_overhead)
    (Repro_workloads.Experiments.iozone_cache_sweep ());
  Printf.printf
    "the same file degrades through CntrFS one budget step earlier than\nnatively — the driver and the backing filesystem each cache a copy\n%!"

(* --- e3e: metadata fast path (extension) ----------------------------------------- *)

let e3e () =
  section "E3e (extension) Metadata fast path: the LOOKUP tax, off vs on";
  let rows = Repro_workloads.Experiments.fig3e () in
  Printf.printf "%-22s %9s %9s %8s   %s\n" "workload" "off" "on" "improv" "";
  List.iter
    (fun r ->
      let open Repro_workloads.Experiments in
      let improv = 100. *. (r.er_off -. r.er_on) /. r.er_off in
      Printf.printf
        "%-22s %8.2fx %8.2fx %7.1f%%   amp %.2f->%.2f backing %d->%d neg=%d rdp=%d hc=%d\n%!"
        r.er_workload r.er_off r.er_on improv r.er_amp_off r.er_amp_on r.er_backing_off
        r.er_backing_on r.er_neg_hits r.er_rdp_entries r.er_hc_hits)
    rows;
  Printf.printf
    "off = the paper's configuration (leaves Figure 2 untouched); on = Opts.fastpath:\n\
     READDIRPLUS + TTL dentry/attr + negative dentries + server handle cache\n%!";
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "{\n  \"experiment\": \"e3e\",\n  \"metric\": \"relative overhead (cntrfs/native), metadata fast path off vs on\",\n  \"workloads\": [\n";
    List.iteri
      (fun i r ->
        let open Repro_workloads.Experiments in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": \"%s\", \"off\": %.4f, \"on\": %.4f, \"amp_off\": %.4f, \"amp_on\": %.4f, \"backing_off\": %d, \"backing_on\": %d, \"negative_hits\": %d, \"readdirplus_entries\": %d, \"handle_cache_hits\": %d}%s\n"
             (Repro_obs.Metrics.json_escape r.er_workload)
             r.er_off r.er_on r.er_amp_off r.er_amp_on r.er_backing_off r.er_backing_on
             r.er_neg_hits r.er_rdp_entries r.er_hc_hits
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}";
    write_json_file "BENCH_e3e.json" (Buffer.contents buf)
  end

(* --- e8: robustness matrix (fault plane) ------------------------------------------ *)

(* Fault plan x workload -> did the session recover, at what residual cost,
   and did the app container survive byte-identical?  Every scenario runs
   the same seeded read workload on a fresh simulated machine with its own
   virtual clock, so the whole matrix (including the overhead column) is
   deterministic down to the byte. *)

module Fault = Repro_fault.Fault

let e8_files = [ ("alpha", 3000); ("beta", 300); ("gamma", 12000) ]

let e8_payload name n =
  String.init n (fun i -> Char.chr (33 + ((Hashtbl.hash name + (i * 7)) mod 90)))

type e8_row = {
  x_name : string;
  x_injected : int;
  x_recoveries : int;
  x_usable : bool; (* all files readable through the mount at the end *)
  x_integrity : bool; (* backing bytes unchanged, observed natively *)
  x_enotconn_only : bool; (* failures (if any) were ENOTCONN, never hangs *)
  x_ns : int; (* virtual ns the workload consumed *)
}

(* [opts] selects the mount configuration (the passthrough scenario runs
   with grants armed); [hold] keeps one fd on /mnt/alpha open across the
   whole phase-A loop so a crash lands while its passthrough grant is
   live; [expect_pt] additionally gates on the grant/revocation counters. *)
let e8_scenario ~name ~recover ?opts ?(hold = false) ?(expect_pt = false) ?fault ?retry () =
  let open Repro_vfs in
  let open Repro_os in
  let open Repro_fuse in
  let open Repro_cntrfs in
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  Errno.ok_exn (Kernel.mkdir k init "/back" ~mode:0o777);
  Errno.ok_exn (Kernel.mkdir k init "/mnt" ~mode:0o755);
  List.iter
    (fun (fname, n) ->
      let fd =
        Errno.ok_exn
          (Kernel.open_ k init ("/back/" ^ fname) [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY ] ~mode:0o644)
      in
      ignore (Errno.ok_exn (Kernel.write k init fd (e8_payload fname n)));
      Errno.ok_exn (Kernel.close k init fd))
    e8_files;
  let server = Kernel.fork k init in
  let budget = Mem_budget.create ~limit_bytes:(32 * 1024 * 1024) in
  let session =
    Session.create ~kernel:k ~server_proc:server ~root_path:"/back" ?opts ?fault ?retry
      ~budget ()
  in
  (match Session.fault session with
  | Some f ->
      Store.set_fault_delay (Nativefs.store rootfs)
        (Some (fun ~op -> Fault.disk_delay_ns f ~op))
  | None -> ());
  ignore (Errno.ok_exn (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  let metrics = Repro_obs.Obs.metrics (Session.obs session) in
  let c cname = Repro_obs.Metrics.counter_value metrics cname in
  let backing_fp () =
    List.map
      (fun (fname, _) ->
        match Kernel.read_whole k init ("/back/" ^ fname) with
        | Ok data -> fname ^ "#" ^ string_of_int (Hashtbl.hash data)
        | Error e -> fname ^ "!" ^ Errno.to_string e)
      e8_files
    |> String.concat ";"
  in
  let fp_before = backing_fp () in
  (* the held fd: opened before any fault fires, so its passthrough grant
     (when [opts] arms the plane) is live when the crash lands *)
  let held =
    if hold then
      Some
        (Errno.ok_exn (Kernel.open_ k init "/mnt/alpha" [ Repro_vfs.Types.O_RDONLY ] ~mode:0))
    else None
  in
  let t0 = Clock.now_ns clock in
  (* an injected Fail errno surfacing to the caller is the plan working as
     written, not an unbounded failure; anything outside the plan's own
     errnos — other than ENOTCONN from a dead server — breaks the contract *)
  let planned_errnos =
    match fault with
    | None -> []
    | Some p ->
        List.filter_map
          (fun { Fault.action; _ } -> match action with Fault.Fail e -> Some e | _ -> None)
          p.Fault.rules
  in
  let bounded = ref true in
  let note e =
    if e <> Errno.ENOTCONN && not (List.mem e planned_errnos) then bounded := false
  in
  let observe = function Ok _ -> () | Error e -> note e in
  (* phase A: the seeded workload, faults firing as armed *)
  for round = 1 to 3 do
    List.iter
      (fun (fname, _) ->
        observe (Kernel.read_whole k init ("/mnt/" ^ fname));
        observe (Kernel.stat k init ("/mnt/" ^ fname)))
      e8_files;
    (* the held fd reads through its grant while the server is up, falls
       back to the round trip (ENOTCONN while dead) after revocation *)
    (match held with
    | Some fd -> observe (Kernel.pread k init fd ~off:0 ~len:512)
    | None -> ());
    observe (Kernel.readdir k init "/mnt");
    (* one write per round, so write-site rules have something to bite on;
       it lands next to the seeded files without touching their bytes *)
    (match
       Kernel.open_ k init "/mnt/scratch"
         [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY ] ~mode:0o644
     with
    | Error e -> note e
    | Ok fd ->
        (match Kernel.write k init fd (Printf.sprintf "round %d\n" round) with
        | Ok _ -> ()
        | Error e -> note e);
        (match Kernel.close k init fd with Ok () -> () | Error e -> note e));
    if recover && session.Session.conn.Conn.dead then Session.recover session
  done;
  (* scripted failover drill: every recovering scenario exercises the
     relaunch path at least once, crashed or not *)
  if recover && c "session.recoveries" = 0 then begin
    Repro_fuse.Conn.inject_crash session.Session.conn;
    observe (Kernel.read_whole k init "/mnt/alpha");
    Session.recover session
  end;
  (* phase B: the session must answer again (one-shot rules may need a few
     attempts to drain) *)
  let usable =
    List.for_all
      (fun (fname, n) ->
        let rec attempt i =
          if i >= 8 then false
          else if recover && session.Session.conn.Conn.dead then begin
            Session.recover session;
            attempt (i + 1)
          end
          else
            match Kernel.read_whole k init ("/mnt/" ^ fname) with
            | Ok data -> String.equal data (e8_payload fname n)
            | Error _ -> attempt (i + 1)
        in
        attempt 0)
      e8_files
  in
  let ns = Int64.to_int (Int64.sub (Clock.now_ns clock) t0) in
  (match held with Some fd -> ignore (Kernel.close k init fd) | None -> ());
  if expect_pt then begin
    if c "fuse.passthrough.grants" < 1 then begin
      Printf.eprintf "e8: scenario %s: passthrough armed but no grant was issued\n" name;
      exit 1
    end;
    if c "fuse.passthrough.revocations" < 1 then begin
      Printf.eprintf "e8: scenario %s: crash with a live grant counted no revocation\n" name;
      exit 1
    end
  end;
  Session.quiesce session;
  {
    x_name = name;
    x_injected = (match Session.fault session with Some f -> Fault.injected f | None -> 0);
    x_recoveries = c "session.recoveries";
    x_usable = usable;
    x_integrity = String.equal fp_before (backing_fp ());
    x_enotconn_only = !bounded;
    x_ns = ns;
  }

let e8 () =
  section "E8 (extension) Robustness matrix: fault plan x workload";
  let r site trigger action = { Fault.site; trigger; action } in
  let scenarios =
    [
      ("baseline", true, None, None);
      ( "latency-spike",
        true,
        Some (Fault.plan [ r (Fault.Fuse None) (Fault.Every 7) (Fault.Delay 2_000_000) ]),
        None );
      ( "disk-degraded",
        true,
        Some (Fault.plan [ r Fault.Disk (Fault.Every 2) (Fault.Delay 120_000) ]),
        None );
      ( "transient-eintr",
        true,
        Some (Fault.plan [ r (Fault.Fuse (Some "read")) (Fault.Nth 2) (Fault.Fail Errno.EINTR) ]),
        Some Fault.retry_default );
      ( "transient-enomem",
        true,
        Some (Fault.plan [ r (Fault.Fuse (Some "lookup")) (Fault.Nth 1) (Fault.Fail Errno.ENOMEM) ]),
        Some Fault.retry_default );
      ( "backing-eio",
        true,
        Some (Fault.plan [ r (Fault.Backing (Some "pread")) (Fault.Nth 3) (Fault.Fail Errno.EIO) ]),
        Some Fault.retry_default );
      ( "enospc-writes",
        true,
        Some (Fault.plan [ r (Fault.Backing (Some "pwrite")) (Fault.Every 1) (Fault.Fail Errno.ENOSPC) ]),
        None );
      ( "dropped-reply",
        true,
        Some (Fault.plan [ r (Fault.Fuse (Some "read")) (Fault.Nth 2) Fault.Drop_reply ]),
        Some Fault.retry_default );
      ( "duplicated-reply",
        true,
        Some (Fault.plan [ r (Fault.Fuse None) (Fault.Every 5) Fault.Duplicate_reply ]),
        None );
      ( "server-hang",
        true,
        Some (Fault.plan [ r (Fault.Fuse (Some "read")) (Fault.Nth 3) (Fault.Hang 50_000_000) ]),
        Some Fault.retry_default );
      ( "crash-recover",
        true,
        Some (Fault.plan [ r (Fault.Fuse (Some "read")) (Fault.Nth 2) Fault.Crash_server ]),
        Some Fault.retry_default );
      ( "crash-norecover",
        false,
        Some (Fault.plan [ r (Fault.Fuse (Some "read")) (Fault.Nth 2) Fault.Crash_server ]),
        None );
    ]
  in
  let rows =
    List.map
      (fun (name, recover, fault, retry) -> e8_scenario ~name ~recover ?fault ?retry ())
      scenarios
  in
  let rows =
    rows
    @ [
        (* crash while a passthrough grant is live: the bypass plane must
           revoke the grant, fall back to round-trip I/O and recover with
           no data loss (gated inside the scenario via [expect_pt]) *)
        e8_scenario ~name:"crash-pt-grant" ~recover:true
          ~opts:{ Repro_fuse.Opts.cntr_default with Repro_fuse.Opts.passthrough = 4 }
          ~hold:true ~expect_pt:true
          ~fault:(Fault.plan [ r (Fault.Fuse None) (Fault.Nth 25) Fault.Crash_server ])
          ~retry:Fault.retry_default ();
      ]
  in
  let base_ns =
    match rows with { x_ns; _ } :: _ -> float_of_int (max 1 x_ns) | [] -> 1.
  in
  Printf.printf "%-18s %8s %9s %7s %9s %9s %9s\n" "scenario" "injected" "recovered"
    "usable" "integrity" "bounded" "overhead";
  List.iter
    (fun row ->
      Printf.printf "%-18s %8d %9d %7s %9s %9s %8.2fx\n%!" row.x_name row.x_injected
        row.x_recoveries
        (if row.x_usable then "yes" else "no")
        (if row.x_integrity then "yes" else "NO")
        (if row.x_enotconn_only then "yes" else "NO")
        (float_of_int row.x_ns /. base_ns))
    rows;
  Printf.printf
    "\nusable = every file readable through the mount at the end; integrity =\n\
     the app container's backing bytes unchanged (observed natively); bounded =\n\
     failures resolved as ENOTCONN in virtual time, never as hangs\n%!";
  (* the matrix is also the acceptance gate: every recovering scenario ends
     usable with >= 1 recovery; the no-recovery crash degrades to bounded
     ENOTCONN and still never corrupts the app container *)
  List.iter
    (fun row ->
      let fail msg =
        Printf.eprintf "e8: scenario %s violated the robustness contract: %s\n" row.x_name msg;
        exit 1
      in
      if not row.x_integrity then fail "backing bytes changed";
      if not row.x_enotconn_only then fail "non-ENOTCONN residual failure";
      if String.equal row.x_name "crash-norecover" then begin
        if row.x_usable then fail "usable without recovery";
        if row.x_recoveries <> 0 then fail "unexpected recovery"
      end
      else begin
        if not row.x_usable then fail "not usable after recovery";
        if row.x_recoveries < 1 then fail "no recovery counted"
      end)
    rows;
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "{\n  \"experiment\": \"e8\",\n  \"metric\": \"fault plan x workload -> recovery, integrity, residual overhead\",\n  \"scenarios\": [\n";
    List.iteri
      (fun i row ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": \"%s\", \"injected\": %d, \"recoveries\": %d, \"usable\": %b, \"integrity\": %b, \"bounded\": %b, \"virtual_ns\": %d, \"overhead\": %.4f}%s\n"
             (Repro_obs.Metrics.json_escape row.x_name)
             row.x_injected row.x_recoveries row.x_usable row.x_integrity
             row.x_enotconn_only row.x_ns
             (float_of_int row.x_ns /. base_ns)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}";
    write_json_file "BENCH_e8.json" (Buffer.contents buf)
  end

(* --- e9: forwarding-plane matrix -------------------------------------------------- *)

(* Splice plane vs userspace copy relay (§3.2.4) across a connection-count x
   traffic-shape matrix.  Everything runs on the virtual clock, so the table
   is byte-deterministic: same costs, same schedules, same bytes. *)

type e9_row = {
  p_conns : int;
  p_workload : string; (* "chatter" | "bulk" *)
  p_mode : string; (* "splice" | "copy" *)
  p_bytes : int; (* payload bytes delivered end to end *)
  p_ns : int; (* virtual ns the plane's pump passes consumed *)
  p_elapsed : int; (* end-to-end virtual ns (fibers overlap on the clock) *)
  p_splices : int;
  p_wakeups : int;
}

let e9_chatter_rounds = 32
let e9_bulk_chunk = 64 * 1024
let e9_bulk_rounds = 4

let e9_boot () =
  let open Repro_vfs in
  let open Repro_os in
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"root" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter (fun d -> Errno.ok_exn (Kernel.mkdir k init d ~mode:0o755)) [ "/run"; "/tmp" ];
  (k, init)

let e9_cell ~mode ~conns ~workload =
  let open Repro_os in
  let module Proxy = Repro_proxy.Proxy in
  let ok = Errno.ok_exn in
  let k, init = e9_boot () in
  let pd = Kernel.fork k init in
  let plane = Proxy.create ~mode ~kernel:k ~proc:pd () in
  let blfd = ok (Kernel.socket_listen ~backlog:conns k init "/run/backend.sock") in
  let _fwd =
    ok
      (Proxy.forward plane ~front_proc:init ~back_proc:init
         ~backend_path:"/run/backend.sock" "/tmp/front.sock")
  in
  let clients = Array.init conns (fun _ -> ok (Kernel.socket_connect k init "/tmp/front.sock")) in
  Proxy.drain plane;
  let servers = Array.init conns (fun _ -> ok (Kernel.socket_accept k init blfd)) in
  let bytes = ref 0 in
  let slurp fd =
    let rec go () =
      match Kernel.read k init fd ~len:(2 * e9_bulk_chunk) with
      | Ok s when s <> "" ->
          bytes := !bytes + String.length s;
          go ()
      | _ -> ()
    in
    go ()
  in
  let t0 = Repro_util.Clock.now_ns k.Kernel.clock in
  (match workload with
  | `Chatter ->
      (* request/response ping-pong: 64-byte messages, both directions *)
      let req = String.make 64 'q' and rsp = String.make 64 'r' in
      for _round = 1 to e9_chatter_rounds do
        Array.iter (fun cfd -> ignore (ok (Kernel.write k init cfd req))) clients;
        Proxy.drain plane;
        Array.iter
          (fun sfd ->
            slurp sfd;
            ignore (ok (Kernel.write k init sfd rsp)))
          servers;
        Proxy.drain plane;
        Array.iter slurp clients
      done
  | `Bulk ->
      (* one-directional streaming: 8 x 32 KiB per connection *)
      let chunk = String.make e9_bulk_chunk 'd' in
      for _round = 1 to e9_bulk_rounds do
        Array.iter (fun cfd -> ignore (ok (Kernel.write k init cfd chunk))) clients;
        Proxy.drain plane;
        Array.iter slurp servers
      done;
      Proxy.drain plane;
      Array.iter slurp servers);
  let elapsed = Int64.to_int (Int64.sub (Repro_util.Clock.now_ns k.Kernel.clock) t0) in
  let metrics = Repro_obs.Obs.metrics k.Kernel.obs in
  let c name = Repro_obs.Metrics.counter_value metrics name in
  let row =
    {
      p_conns = conns;
      p_workload = (match workload with `Chatter -> "chatter" | `Bulk -> "bulk");
      p_mode = (match mode with Proxy.Splice -> "splice" | Proxy.Copy -> "copy");
      p_bytes = !bytes;
      p_ns = c "proxy.datapath.ns";
      p_elapsed = elapsed;
      p_splices = c "proxy.splice.calls";
      p_wakeups = c "proxy.loop.wakeups";
    }
  in
  Proxy.close plane;
  row

(* The constrained-buffer cell: a 4 KiB staging pipe and a backend that
   only drains between bursts, forcing the pumps to park on a full sink. *)
let e9_stalls () =
  let open Repro_os in
  let module Proxy = Repro_proxy.Proxy in
  let ok = Errno.ok_exn in
  let k, init = e9_boot () in
  let pd = Kernel.fork k init in
  let plane = Proxy.create ~buffer:4096 ~kernel:k ~proc:pd () in
  let _blfd = ok (Kernel.socket_listen k init "/run/backend.sock") in
  let _fwd =
    ok
      (Proxy.forward plane ~front_proc:init ~back_proc:init
         ~backend_path:"/run/backend.sock" "/tmp/front.sock")
  in
  let cfd = ok (Kernel.socket_connect k init "/tmp/front.sock") in
  let burst = String.make Pipe.default_capacity 'x' in
  ignore (ok (Kernel.write k init cfd burst));
  Proxy.drain plane;
  ignore (ok (Kernel.write k init cfd burst));
  Proxy.drain plane;
  let stalls =
    Repro_obs.Metrics.counter_value (Repro_obs.Obs.metrics k.Kernel.obs) "proxy.buffer.stalls"
  in
  Proxy.close plane;
  stalls

let e9 () =
  section "E9 (extension) Forwarding plane: splice vs copy relay (S3.2.4)";
  let module Proxy = Repro_proxy.Proxy in
  let cells =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun conns ->
            List.map
              (fun mode -> e9_cell ~mode ~conns ~workload)
              [ Proxy.Splice; Proxy.Copy ])
          [ 1; 8; 64 ])
      [ `Chatter; `Bulk ]
  in
  let stalls = e9_stalls () in
  let find workload conns mode =
    List.find
      (fun r -> r.p_workload = workload && r.p_conns = conns && r.p_mode = mode)
      cells
  in
  Printf.printf "%-9s %6s %7s %12s %13s %12s %10s %9s\n" "workload" "conns" "mode" "bytes"
    "datapath-ns" "ns/KiB" "elapsed" "splices";
  List.iter
    (fun r ->
      Printf.printf "%-9s %6d %7s %12d %13d %12.1f %10d %9d\n%!" r.p_workload r.p_conns
        r.p_mode r.p_bytes r.p_ns
        (float_of_int r.p_ns /. (float_of_int (max 1 r.p_bytes) /. 1024.))
        r.p_elapsed r.p_splices)
    cells;
  Printf.printf
    "\ndatapath-ns = virtual time the pump passes consume (fibers overlap on the\n\
     clock, so end-to-end elapsed hides the relay's own cost at scale)\n";
  Printf.printf "\nspeedup (copy-relay datapath-ns / splice datapath-ns; >1 = splice wins):\n";
  List.iter
    (fun workload ->
      List.iter
        (fun conns ->
          let s = find workload conns "splice" and c = find workload conns "copy" in
          Printf.printf "  %-9s x%-3d  %.2fx\n" workload conns
            (float_of_int c.p_ns /. float_of_int (max 1 s.p_ns)))
        [ 1; 8; 64 ])
    [ "chatter"; "bulk" ];
  Printf.printf "constrained-buffer stalls (4 KiB staging): %d\n%!" stalls;
  (* acceptance gates: identical bytes either mode; zero-copy wins bulk
     streaming at scale; the constrained cell really exercises backpressure *)
  let fail msg =
    Printf.eprintf "e9: %s\n" msg;
    exit 1
  in
  List.iter
    (fun workload ->
      List.iter
        (fun conns ->
          let s = find workload conns "splice" and c = find workload conns "copy" in
          if s.p_bytes <> c.p_bytes then
            fail
              (Printf.sprintf "%s x%d: splice moved %d bytes, copy %d" workload conns
                 s.p_bytes c.p_bytes);
          if s.p_splices = 0 then
            fail (Printf.sprintf "%s x%d: splice mode made no splice calls" workload conns))
        [ 1; 8; 64 ])
    [ "chatter"; "bulk" ];
  List.iter
    (fun conns ->
      let s = find "bulk" conns "splice" and c = find "bulk" conns "copy" in
      if s.p_ns >= c.p_ns then
        fail
          (Printf.sprintf "bulk x%d: splice datapath (%d ns) did not beat copy (%d ns)" conns
             s.p_ns c.p_ns))
    [ 8; 64 ];
  if stalls <= 0 then fail "constrained-buffer cell recorded no stalls";
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "{\n  \"experiment\": \"e9\",\n  \"metric\": \"forwarding plane: splice vs copy relay, virtual-ns per cell\",\n  \"cells\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"workload\": \"%s\", \"conns\": %d, \"mode\": \"%s\", \"bytes\": %d, \"datapath_ns\": %d, \"elapsed_ns\": %d, \"splices\": %d, \"wakeups\": %d}%s\n"
             (Repro_obs.Metrics.json_escape r.p_workload)
             r.p_conns
             (Repro_obs.Metrics.json_escape r.p_mode)
             r.p_bytes r.p_ns r.p_elapsed r.p_splices r.p_wakeups
             (if i = List.length cells - 1 then "" else ",")))
      cells;
    Buffer.add_string buf
      (Printf.sprintf "  ],\n  \"constrained_buffer_stalls\": %d\n}" stalls);
    write_json_file "BENCH_e9.json" (Buffer.contents buf)
  end

(* --- fleet: the cntrd control plane at 10k-session scale ------------------------- *)

(* Four shards, each its own world + cntrd, 2 500 admitted sessions per
   shard = exactly 10 000 sessions.  The churn mix exercises every edge
   of the control plane: zipf-popular containers across all four engines,
   four tenants (mallory never detaches voluntarily, pinning her quota
   until creates bounce), admission queueing under a tight ceiling,
   explicit $/cancel of in-flight execs, and a fault plan that crashes
   attach servers under exec so cntrd's transparent recovery fires.
   Everything derives from the virtual clock and the shard seeds, so the
   JSON is byte-deterministic. *)

let fleet_target = 2500
let fleet_shards = 4

let fleet_images =
  [| "nginx:latest"; "redis:latest"; "postgres:latest"; "memcached:latest";
     "mysql:latest"; "mongo:latest"; "rabbitmq:latest"; "elasticsearch:latest";
     "haproxy:latest"; "influxdb:latest"; "grafana:latest"; "wordpress:latest" |]

let fleet_engines = [| "docker"; "lxc"; "rkt"; "systemd-nspawn" |]
let fleet_tenants = [| "alice"; "bob"; "carol"; "mallory" |]
let fleet_cmds = [| "hostname"; "ps"; "ls /var/lib/cntr"; "cat /var/lib/cntr/etc/passwd" |]

type fleet_row = {
  f_shard : int;
  f_seed : int;
  f_sessions : int;
  f_rejected : int;
  f_recovered : int;
  f_cancelled : int;
  f_rpc_calls : int;
  f_execs : int;
  f_active_end : int;
  f_wait : Repro_obs.Metrics.summary option;
}

let fleet_shard idx =
  let open Repro_ctrl in
  let module World = Repro_runtime.World in
  let seed = 0xf1ee7 + (idx * 7919) in
  let rng = Rng.create ~seed in
  let world = Repro_cntr.Testbed.create () in
  Array.iteri
    (fun i image ->
      let engine = World.engine world fleet_engines.(i mod Array.length fleet_engines) in
      ignore
        (Errno.ok_exn
           (World.run_container world ~engine ~name:(Printf.sprintf "c%02d" i)
              ~image_ref:image ())))
    fleet_images;
  let plan_text =
    Printf.sprintf "seed %d\nctrl exec every=977 crash\nctrl create every=701 delay=20000" seed
  in
  let plan =
    match Repro_fault.Fault.parse plan_text with
    | Ok (p, _) -> p
    | Error m -> failwith ("fleet: bad fault plan: " ^ m)
  in
  let config =
    {
      Daemon.default_config with
      Daemon.c_max_active = 24;
      c_queue_depth = 12;
      c_tenant = { Daemon.q_active = 10; q_queued = 6 };
      c_fault = Some plan;
    }
  in
  let daemon = Daemon.create ~config world in
  let client = Client.in_process daemon in
  (* zipf-ish container popularity: weight 1/rank *)
  let weights = Array.init (Array.length fleet_images) (fun k -> 1200 / (k + 1)) in
  let total_w = Array.fold_left ( + ) 0 weights in
  let pick_container () =
    let r = ref (Rng.int rng total_w) and i = ref 0 in
    while !r >= weights.(!i) do
      r := !r - weights.(!i);
      incr i
    done;
    Printf.sprintf "c%02d" !i
  in
  let pending = ref [] (* submitted creates without a reply: parked or brand new *)
  and active = ref [] (* (session id, tenant) *)
  and admitted = ref 0
  and execs = ref 0
  and ops = ref 0 in
  let step_pending () =
    pending :=
      List.filter
        (fun tk ->
          match Client.poll client tk with
          | None -> true
          | Some { Rpc.p_result = Ok v; _ } ->
              incr admitted;
              let sid = Option.value (Jsonx.field_int v "session") ~default:(-1) in
              let tenant = Option.value (Jsonx.field_str v "tenant") ~default:"" in
              active := !active @ [ (sid, tenant) ];
              false
          | Some _ -> false (* admission rejected; counted by the daemon *))
        !pending
  in
  let submit_create () =
    let tenant = Rng.choose rng fleet_tenants in
    let params =
      Jsonx.Obj [ ("container", Jsonx.Str (pick_container ())); ("tenant", Jsonx.Str tenant) ]
    in
    pending := !pending @ [ Client.submit client ~params "session.create" ]
  in
  let exec_random () =
    match !active with
    | [] -> ()
    | l ->
        let sid, _ = List.nth l (Rng.int rng (List.length l)) in
        incr execs;
        ignore (Client.session_exec client ~session:sid (Rng.choose rng fleet_cmds))
  in
  let detach_nth i =
    let rec split k acc = function
      | [] -> None
      | x :: tl -> if k = 0 then Some (x, List.rev_append acc tl) else split (k - 1) (x :: acc) tl
    in
    match split i [] !active with
    | None -> ()
    | Some ((sid, _), rest) ->
        active := rest;
        ignore (Client.session_detach client ~session:sid)
  in
  let detach_random_peaceful () =
    (* mallory never detaches voluntarily: her sessions pin her quota
       until her creates start bouncing *)
    let idxs =
      List.filteri (fun _ (_, t) -> t <> "mallory") !active
      |> List.map (fun (sid, _) -> sid)
    in
    match idxs with
    | [] -> ()
    | _ ->
        let sid = List.nth idxs (Rng.int rng (List.length idxs)) in
        let i = ref (-1) in
        List.iteri (fun j (s, _) -> if s = sid && !i < 0 then i := j) !active;
        if !i >= 0 then detach_nth !i
  in
  let cancel_exec () =
    match !active with
    | [] -> ()
    | l ->
        let sid, _ = List.nth l (Rng.int rng (List.length l)) in
        let params = Jsonx.Obj [ ("session", Jsonx.Int sid); ("cmd", Jsonx.Str "ps") ] in
        let tk = Client.submit client ~params "session.exec" in
        Client.cancel client tk;
        ignore (Client.await client tk)
  in
  (* churn until every admitted-or-parked create accounts for the target *)
  while !admitted + List.length !pending < fleet_target do
    incr ops;
    if !ops mod 97 = 0 then cancel_exec ();
    let r = Rng.int rng 100 in
    if r < 35 then submit_create ()
    else if r < 75 then exec_random ()
    else detach_random_peaceful ();
    step_pending ()
  done;
  (* drain: parked creates admit as slots free (FIFO), then empty the fleet *)
  while !pending <> [] || !active <> [] do
    (match !active with _ :: _ -> detach_nth 0 | [] -> Daemon.pump daemon);
    step_pending ()
  done;
  let m = Repro_obs.Obs.metrics (Daemon.obs daemon) in
  let c name = Repro_obs.Metrics.counter_value m name in
  let row =
    {
      f_shard = idx;
      f_seed = seed;
      f_sessions = c "ctrl.sessions.total";
      f_rejected = c "ctrl.sessions.rejected";
      f_recovered = c "ctrl.sessions.recovered";
      f_cancelled = c "ctrl.rpc.cancelled";
      f_rpc_calls = c "ctrl.rpc.calls";
      f_execs = !execs;
      f_active_end = int_of_float (Repro_obs.Metrics.gauge_value m "ctrl.sessions.active");
      f_wait = Repro_obs.Metrics.histogram_summary m "ctrl.queue.wait_us";
    }
  in
  Printf.printf
    "  shard %d (seed %#x): %d sessions, %d execs, %d rejected, %d cancelled, %d recovered\n%!"
    idx seed row.f_sessions row.f_execs row.f_rejected row.f_cancelled row.f_recovered;
  row

(* --- fleet wire shard: the same control plane over framed connections ----------- *)

(* One extra shard that pays for its bytes: every request Content-Length
   framed over the forwarding plane.  Phase 1 drives sessions strictly
   one-at-a-time; phase 2 drives the same per-session work pipelined in
   16-call JSON-RPC array envelopes (one frame per batch).  Both phases
   do identical per-session work on the virtual clock, so the measured
   speedup is exactly the transport: fewer frames, fewer syscalls, fewer
   plane wakeups.  The third leg is a slow reader — a client that fires a
   storm of stats and claims nothing until the end: its connection must
   stall at the high watermark (backlog peak <= high + one frame, never
   unbounded) and the in-flight cap must refuse the overflow with -32005,
   while every submitted id still gets exactly one reply. *)

type fleet_wire = {
  fw_sessions : int;
  fw_seq_ns : int;
  fw_pipe_ns : int;
  fw_speedup : float;
  fw_conns : int;
  fw_batches : int;
  fw_pipelined_max : int;
  fw_stalls : int;
  fw_overloaded : int;
  fw_backlog_peak : int;
  fw_frame_max : int;
  fw_storm_ok : int;
  fw_storm_refused : int;
  fw_events : int;
  fw_c2b : int;
  fw_b2c : int;
}

let fleet_wire_seq = 400
let fleet_wire_pipe = 800
let fleet_wire_batch = 16
let fleet_wire_high = 4096
let fleet_wire_low = 1024
let fleet_wire_inflight = 64
let fleet_wire_storm = 1200

let fleet_wire_shard () =
  let open Repro_ctrl in
  let module World = Repro_runtime.World in
  let world = Repro_cntr.Testbed.create () in
  Array.iteri
    (fun i image ->
      let engine = World.engine world fleet_engines.(i mod Array.length fleet_engines) in
      ignore
        (Errno.ok_exn
           (World.run_container world ~engine ~name:(Printf.sprintf "c%02d" i)
              ~image_ref:image ())))
    fleet_images;
  let config =
    {
      Daemon.default_config with
      Daemon.c_max_active = 32;
      c_queue_depth = 16;
      c_tenant = { Daemon.q_active = 16; q_queued = 8 };
      c_wire_inflight = fleet_wire_inflight;
      c_wire_high = fleet_wire_high;
      c_wire_low = fleet_wire_low;
    }
  in
  let daemon = Daemon.create ~config world in
  let w = Errno.ok_exn (Daemon.wire_serve daemon ~path:"/run/cntrd.sock" ()) in
  let clock = world.World.kernel.Repro_os.Kernel.clock in
  let now () = Int64.to_int (Clock.now_ns clock) in
  let okr = function
    | Ok v -> v
    | Error (e : Rpc.rerror) ->
        failwith (Printf.sprintf "fleet wire: rpc error %d: %s" e.Rpc.e_code e.Rpc.e_message)
  in
  let pick i = Printf.sprintf "c%02d" (i mod Array.length fleet_images) in
  (* phase 1: one request at a time, each awaited before the next *)
  let seq_client = Client.connect w in
  let t0 = now () in
  for i = 0 to fleet_wire_seq - 1 do
    let c = okr (Client.session_create seq_client ~tenant:fleet_tenants.(i mod 4) (pick i)) in
    ignore (okr (Client.session_exec seq_client ~session:c.Client.sc_session "hostname"));
    ignore (okr (Client.session_detach seq_client ~session:c.Client.sc_session))
  done;
  let seq_ns = now () - t0 in
  (* phase 2: identical per-session work, [fleet_wire_batch] calls per
     array envelope, replies claimed after each envelope *)
  let pipe_client = Client.connect w in
  let t1 = now () in
  for b = 0 to (fleet_wire_pipe / fleet_wire_batch) - 1 do
    let creates =
      Client.batch pipe_client (fun () ->
          List.init fleet_wire_batch (fun i ->
              Client.start_create pipe_client ~tenant:fleet_tenants.(i mod 4)
                (pick ((b * fleet_wire_batch) + i))))
    in
    let sids =
      List.map (fun h -> (okr (Client.finish pipe_client h)).Client.sc_session) creates
    in
    let execs =
      Client.batch pipe_client (fun () ->
          List.map (fun sid -> Client.start_exec pipe_client ~session:sid "hostname") sids)
    in
    List.iter (fun h -> ignore (okr (Client.finish pipe_client h))) execs;
    let dets =
      Client.batch pipe_client (fun () ->
          List.map (fun sid -> Client.start_detach pipe_client ~session:sid) sids)
    in
    List.iter (fun h -> ignore (okr (Client.finish pipe_client h))) dets
  done;
  let pipe_ns = now () - t1 in
  (* slow-reader leg: subscribe, then a storm of stats claimed only at
     the end; the first envelope deliberately bursts past the in-flight
     cap so admission pushback fires alongside the watermark stall *)
  let slow = Client.connect w in
  ignore (okr (Client.subscribe slow));
  let sc = okr (Client.session_create slow ~tenant:"mallory" (pick 0)) in
  let sid = sc.Client.sc_session in
  let burst =
    Client.batch slow (fun () ->
        List.init (fleet_wire_inflight + 32) (fun _ -> Client.start_stat slow ~session:sid))
  in
  let singles =
    List.init
      (fleet_wire_storm - (fleet_wire_inflight + 32))
      (fun _ -> Client.start_stat slow ~session:sid)
  in
  let storm_ok = ref 0 and storm_refused = ref 0 in
  List.iter
    (fun h ->
      match Client.finish slow h with
      | Ok _ -> incr storm_ok
      | Error e when e.Rpc.e_code = Rpc.overloaded -> incr storm_refused
      | Error e ->
          failwith
            (Printf.sprintf "fleet wire: unexpected storm error %d: %s" e.Rpc.e_code
               e.Rpc.e_message))
    (burst @ singles);
  ignore (okr (Client.session_detach slow ~session:sid));
  let events = List.length (Client.notifications slow) in
  let m = Repro_obs.Obs.metrics (Daemon.obs daemon) in
  let c name = Repro_obs.Metrics.counter_value m name in
  let g name = int_of_float (Repro_obs.Metrics.gauge_value m name) in
  let per_seq = float_of_int seq_ns /. float_of_int fleet_wire_seq in
  let per_pipe = float_of_int pipe_ns /. float_of_int fleet_wire_pipe in
  {
    fw_sessions = c "ctrl.sessions.total";
    fw_seq_ns = seq_ns;
    fw_pipe_ns = pipe_ns;
    fw_speedup = per_seq /. per_pipe;
    fw_conns = c "ctrl.wire.conns";
    fw_batches = c "ctrl.wire.batches";
    fw_pipelined_max = g "ctrl.wire.pipelined.max";
    fw_stalls = c "ctrl.wire.stalls";
    fw_overloaded = c "ctrl.wire.overloaded";
    fw_backlog_peak = g "ctrl.wire.backlog.peak";
    fw_frame_max = g "ctrl.wire.frame.max";
    fw_storm_ok = !storm_ok;
    fw_storm_refused = !storm_refused;
    fw_events = events;
    fw_c2b = c "proxy.fwd.rpc.bytes.c2b";
    fw_b2c = c "proxy.fwd.rpc.bytes.b2c";
  }

let fleet () =
  section
    (Printf.sprintf "Fleet: cntrd control plane, %d shards x %d sessions = %d"
       fleet_shards fleet_target (fleet_shards * fleet_target));
  let rows = List.init fleet_shards fleet_shard in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let sessions = sum (fun r -> r.f_sessions)
  and rejected = sum (fun r -> r.f_rejected)
  and recovered = sum (fun r -> r.f_recovered)
  and cancelled = sum (fun r -> r.f_cancelled)
  and rpc_calls = sum (fun r -> r.f_rpc_calls)
  and active_end = sum (fun r -> r.f_active_end) in
  Printf.printf
    "\ntotals: %d sessions (%d rpc calls), %d rejected, %d cancelled, %d recovered, %d still active\n%!"
    sessions rpc_calls rejected cancelled recovered active_end;
  let fail msg =
    Printf.eprintf "fleet: %s\n" msg;
    exit 1
  in
  if sessions <> fleet_shards * fleet_target then
    fail (Printf.sprintf "expected exactly %d sessions, got %d" (fleet_shards * fleet_target) sessions);
  if rejected = 0 then fail "no admission rejections — quotas never bit";
  if cancelled = 0 then fail "no cancellations — $/cancel never fired";
  if recovered < 1 then fail "no recoveries — the ctrl fault site never crashed a server";
  if active_end <> 0 then fail (Printf.sprintf "%d sessions leaked past the drain" active_end);
  let fw = fleet_wire_shard () in
  Printf.printf "\nwire shard: %d sessions over framed connections (%d conns, %d envelopes)\n"
    fw.fw_sessions fw.fw_conns fw.fw_batches;
  Printf.printf "  sequential : %4d sessions  %9d virtual ns  (%.0f ns/session)\n"
    fleet_wire_seq fw.fw_seq_ns
    (float_of_int fw.fw_seq_ns /. float_of_int fleet_wire_seq);
  Printf.printf "  pipelined  : %4d sessions  %9d virtual ns  (%.0f ns/session)  x%.2f vs sequential\n"
    fleet_wire_pipe fw.fw_pipe_ns
    (float_of_int fw.fw_pipe_ns /. float_of_int fleet_wire_pipe)
    fw.fw_speedup;
  Printf.printf
    "  flow ctl   : stalls=%d overloaded=%d pipelined.max=%d backlog.peak=%d (high=%d, frame.max=%d)\n"
    fw.fw_stalls fw.fw_overloaded fw.fw_pipelined_max fw.fw_backlog_peak fleet_wire_high
    fw.fw_frame_max;
  Printf.printf "  slow reader: %d stats answered (%d ok, %d refused -32005), %d events\n%!"
    (fw.fw_storm_ok + fw.fw_storm_refused) fw.fw_storm_ok fw.fw_storm_refused fw.fw_events;
  if fw.fw_sessions < 1000 then
    fail (Printf.sprintf "wire shard: %d sessions, need >= 1000 over framed connections" fw.fw_sessions);
  if fw.fw_speedup <= 1.0 then
    fail (Printf.sprintf "wire shard: pipelining did not beat one-at-a-time (x%.3f)" fw.fw_speedup);
  if fw.fw_pipelined_max <= 1 then fail "wire shard: no pipelining observed on any connection";
  if fw.fw_stalls = 0 then fail "wire shard: slow reader never hit the high watermark";
  if fw.fw_overloaded = 0 then fail "wire shard: the in-flight cap never refused a request";
  if fw.fw_backlog_peak > fleet_wire_high + fw.fw_frame_max then
    fail
      (Printf.sprintf "wire shard: unbounded backlog — peak %d > high %d + frame %d"
         fw.fw_backlog_peak fleet_wire_high fw.fw_frame_max);
  if fw.fw_storm_ok + fw.fw_storm_refused <> fleet_wire_storm then
    fail
      (Printf.sprintf "wire shard: storm replies lost or duplicated (%d + %d <> %d)"
         fw.fw_storm_ok fw.fw_storm_refused fleet_wire_storm);
  if !json_mode then begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"experiment\": \"fleet\",\n  \"shards\": [\n";
    List.iteri
      (fun i r ->
        let wait =
          match r.f_wait with
          | None -> "null"
          | Some s ->
              Printf.sprintf "{\"count\": %d, \"mean\": %.2f, \"p95\": %.2f, \"max\": %.2f}"
                s.Repro_obs.Metrics.s_count s.Repro_obs.Metrics.s_mean
                s.Repro_obs.Metrics.s_p95 s.Repro_obs.Metrics.s_max
        in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"shard\": %d, \"seed\": %d, \"sessions\": %d, \"execs\": %d, \"rejected\": %d, \"cancelled\": %d, \"recovered\": %d, \"rpc_calls\": %d, \"queue_wait_us\": %s}%s\n"
             r.f_shard r.f_seed r.f_sessions r.f_execs r.f_rejected r.f_cancelled
             r.f_recovered r.f_rpc_calls wait
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf
      (Printf.sprintf
         "  ],\n  \"wire\": {\"sessions\": %d, \"seq_sessions\": %d, \"seq_ns\": %d, \"pipe_sessions\": %d, \"pipe_ns\": %d, \"speedup\": %.3f, \"batch\": %d, \"conns\": %d, \"batches\": %d, \"pipelined_max\": %d, \"stalls\": %d, \"overloaded\": %d, \"backlog_peak\": %d, \"frame_max\": %d, \"wire_high\": %d, \"storm_ok\": %d, \"storm_refused\": %d, \"events\": %d, \"fwd_bytes_c2b\": %d, \"fwd_bytes_b2c\": %d},\n"
         fw.fw_sessions fleet_wire_seq fw.fw_seq_ns fleet_wire_pipe fw.fw_pipe_ns
         fw.fw_speedup fleet_wire_batch fw.fw_conns fw.fw_batches fw.fw_pipelined_max
         fw.fw_stalls fw.fw_overloaded fw.fw_backlog_peak fw.fw_frame_max fleet_wire_high
         fw.fw_storm_ok fw.fw_storm_refused fw.fw_events fw.fw_c2b fw.fw_b2c);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"totals\": {\"sessions\": %d, \"rejected\": %d, \"cancelled\": %d, \"recovered\": %d, \"rpc_calls\": %d, \"active_end\": %d}\n}"
         sessions rejected cancelled recovered rpc_calls active_end);
    write_json_file "BENCH_fleet.json" (Buffer.contents buf)
  end

(* --- bechamel micro-benchmarks -------------------------------------------------- *)

let micro () =
  section "Wall-clock micro-benchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* one attach end-to-end, repeated *)
  let test_attach =
    Test.make ~name:"cntr attach (full workflow)"
      (Staged.stage (fun () ->
           let world = Repro_cntr.Testbed.create () in
           let _c =
             Errno.ok_exn
               (Repro_runtime.World.run_container world
                  ~engine:(Repro_runtime.World.docker world) ~name:"b" ~image_ref:"redis:latest" ())
           in
           let s = Errno.ok_exn (Repro_cntr.Testbed.attach world "b") in
           Repro_cntr.Attach.detach s))
  in
  let test_rt =
    Test.make ~name:"FUSE round trip (simulated)"
      (let setup = Repro_xfstests.Harness.setup_cntrfs () in
       let k = setup.Repro_xfstests.Harness.su_kernel in
       let p = setup.Repro_xfstests.Harness.su_root in
       ignore (Errno.ok_exn (Repro_os.Kernel.mkdir k p "/mnt/micro" ~mode:0o755));
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           ignore (Repro_os.Kernel.stat k p (Printf.sprintf "/mnt/micro/f%d" !i))))
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let instances = [ Instance.monotonic_clock ] in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %12.0f ns/op\n%!" name est
        | _ -> ())
      results
  in
  benchmark test_rt;
  benchmark test_attach

(* --- driver ---------------------------------------------------------------------- *)

let all =
  [ ("e1", e1); ("e2", e2); ("e2a", e2a); ("e3", e3); ("e3e", e3e); ("e4", e4); ("e5", e5);
    ("e5r", e5r); ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("fleet", fleet); ("loc", e7);
    ("ablate", ablate); ("cache", cache_sweep); ("micro", micro) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke, args = List.partition (( = ) "--smoke") args in
  let json, args = List.partition (( = ) "--json") args in
  if json <> [] then json_mode := true;
  if smoke <> [] then begin
    (* `main.exe e2 --smoke` (the e2 is informative; --smoke selects) *)
    Printf.printf "CNTR reproduction — evaluation harness (virtual-time simulation)\n";
    e2_smoke ();
    exit 0
  end;
  let to_run =
    match args with
    | [] -> [ e1; e2; e2a; e3; e3e; e4; e5; e6; e7; e8; e9; ablate; cache_sweep; micro ]
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt (String.lowercase_ascii n) all with
            | Some f -> Some f
            | None ->
                Printf.eprintf "unknown experiment %s (known: e1-e9, e3e, loc, ablate, micro)\n" n;
                None)
          names
  in
  Printf.printf "CNTR reproduction — evaluation harness (virtual-time simulation)\n";
  List.iter (fun f -> f ()) to_run
